"""Unit tests for the memory controller array and Optane controllers."""

import pytest

from repro.config import OptaneConfig
from repro.gpu.memory_controller import MemoryControllerArray, build_optane_controllers


class TestMemoryControllerArray:
    def make(self, controllers=2):
        return MemoryControllerArray(
            name="mc",
            controllers=controllers,
            bytes_per_cycle_per_controller=8.0,
            fixed_latency_cycles=100.0,
            write_latency_cycles=300.0,
        )

    def test_read_latency_floor(self):
        array = self.make()
        completion = array.access(0, 128, is_write=False, now=0.0)
        assert completion >= 100.0 + 128 / 8.0

    def test_write_uses_write_latency(self):
        array = self.make()
        read = array.access(0, 128, is_write=False, now=0.0)
        write = array.access(1 << 20, 128, is_write=True, now=0.0)
        assert write > read

    def test_striping_across_controllers(self):
        array = self.make(controllers=2)
        first = array.controller_for(0)
        second = array.controller_for(256)
        assert first is not second

    def test_bytes_accounted(self):
        array = self.make()
        array.access(0, 128, is_write=False, now=0.0)
        array.access(256, 128, is_write=False, now=0.0)
        assert array.bytes_transferred == 256

    def test_invalid_controllers(self):
        with pytest.raises(ValueError):
            MemoryControllerArray("bad", 0, 1.0, 1.0)


class TestOptaneControllers:
    def test_build_from_config(self):
        config = OptaneConfig()
        array = build_optane_controllers(config)
        assert array.controllers == 6

    def test_write_slower_than_read(self):
        config = OptaneConfig()
        array = build_optane_controllers(config)
        read = array.access(0, 256, is_write=False, now=0.0)
        write = array.access(1 << 20, 256, is_write=True, now=0.0)
        assert write > read
