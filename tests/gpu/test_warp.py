"""Unit tests for warp trace containers."""

import pytest

from repro.gpu.warp import (
    Instruction,
    WarpTrace,
    read_fraction,
    total_instructions,
    total_memory_instructions,
)
from repro.sim.request import AccessType


class TestInstruction:
    def test_compute_only(self):
        instr = Instruction(pc=0, compute_ops=3)
        assert not instr.is_memory
        assert instr.instruction_count == 3

    def test_memory_instruction(self):
        instr = Instruction(pc=0, compute_ops=2, addresses=[0, 128])
        assert instr.is_memory
        assert instr.instruction_count == 3


class TestWarpTrace:
    def make_trace(self):
        trace = WarpTrace(warp_id=0, sm_id=0)
        trace.append(Instruction(pc=0, compute_ops=2))
        trace.append(Instruction(pc=1, addresses=[0], access=AccessType.READ))
        trace.append(Instruction(pc=2, addresses=[4096], access=AccessType.WRITE))
        return trace

    def test_counts(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert trace.memory_instructions == 2
        assert trace.read_instructions == 1
        assert trace.write_instructions == 1
        assert trace.total_instructions == 2 + 1 + 1

    def test_touched_pages(self):
        trace = self.make_trace()
        assert trace.touched_pages() == {0, 1}


class TestAggregates:
    def test_totals(self):
        trace = WarpTrace(warp_id=0, sm_id=0)
        trace.append(Instruction(pc=0, compute_ops=1, addresses=[0], access=AccessType.READ))
        traces = [trace, trace]
        assert total_instructions(traces) == 4
        assert total_memory_instructions(traces) == 2

    def test_read_fraction(self):
        read = WarpTrace(warp_id=0, sm_id=0)
        read.append(Instruction(pc=0, addresses=[0], access=AccessType.READ))
        write = WarpTrace(warp_id=1, sm_id=0)
        write.append(Instruction(pc=0, addresses=[0], access=AccessType.WRITE))
        assert read_fraction([read, write]) == pytest.approx(0.5)

    def test_read_fraction_no_memory(self):
        trace = WarpTrace(warp_id=0, sm_id=0)
        trace.append(Instruction(pc=0, compute_ops=1))
        assert read_fraction([trace]) == 0.0
