"""Unit tests for the coalescing unit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.coalescer import CoalescingUnit
from repro.sim.request import AccessType


class TestCoalescing:
    def test_fully_coalesced_warp(self):
        unit = CoalescingUnit()
        addresses = [0x1000 + 4 * i for i in range(32)]  # 128 consecutive bytes
        requests = unit.coalesce(addresses, AccessType.READ)
        assert len(requests) == 1
        assert requests[0].address == 0x1000
        assert requests[0].size == 128

    def test_straddling_two_segments(self):
        unit = CoalescingUnit()
        addresses = [0x1040 + 4 * i for i in range(32)]  # crosses a 128 B boundary
        requests = unit.coalesce(addresses, AccessType.READ)
        assert len(requests) == 2

    def test_fully_scattered_warp(self):
        unit = CoalescingUnit()
        addresses = [i * 4096 for i in range(32)]
        requests = unit.coalesce(addresses, AccessType.READ)
        assert len(requests) == 32

    def test_duplicate_addresses_merge(self):
        unit = CoalescingUnit()
        requests = unit.coalesce([0x2000] * 32, AccessType.WRITE)
        assert len(requests) == 1
        assert requests[0].is_write

    def test_metadata_propagated(self):
        unit = CoalescingUnit()
        requests = unit.coalesce(
            [0x100], AccessType.READ, warp_id=7, sm_id=3, pc=0xcafe, issue_cycle=42.0
        )
        request = requests[0]
        assert request.warp_id == 7
        assert request.sm_id == 3
        assert request.pc == 0xcafe
        assert request.issue_cycle == 42.0

    def test_empty_addresses(self):
        unit = CoalescingUnit()
        assert unit.coalesce([], AccessType.READ) == []

    def test_efficiency_statistic(self):
        unit = CoalescingUnit()
        unit.coalesce([0x0, 0x80], AccessType.READ)
        unit.coalesce([0x0], AccessType.READ)
        assert unit.coalescing_efficiency() == pytest.approx(1.5)

    def test_requests_are_aligned(self):
        unit = CoalescingUnit()
        requests = unit.coalesce([0x1234, 0x5678], AccessType.READ)
        for request in requests:
            assert request.address % 128 == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_coalesced_count_bounded(self, addresses):
        """Never more requests than threads, never fewer than distinct segments."""
        unit = CoalescingUnit()
        requests = unit.coalesce(addresses, AccessType.READ)
        distinct_segments = {a // 128 for a in addresses}
        assert len(requests) == len(distinct_segments)
        assert 1 <= len(requests) <= len(addresses)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_every_thread_address_covered(self, addresses):
        unit = CoalescingUnit()
        requests = unit.coalesce(addresses, AccessType.READ)
        segments = {r.address for r in requests}
        for address in addresses:
            assert (address // 128) * 128 in segments


class TestPrecomputedSegments:
    """Trace generators may attach segments precomputed at 128 B granularity;
    the unit must honour them only when its own request size matches."""

    def _addresses(self, base=4096):
        return [base + 4 * t for t in range(32)]

    def test_matching_request_size_uses_precomputed_segments(self):
        unit = CoalescingUnit(request_bytes=128)
        requests = unit.coalesce(
            self._addresses(), AccessType.READ, segments=(4096,)
        )
        assert [r.address for r in requests] == [4096]
        assert all(r.size == 128 for r in requests)

    def test_ablated_request_size_ignores_precomputed_segments(self):
        # gpu.memory_request_bytes=256 ablation: the 128 B-granular segments
        # baked into the trace are stale and must be recomputed live.
        unit = CoalescingUnit(request_bytes=256)
        addresses = [4096 + 4 * t for t in range(32)] + [4096 + 128 + 4 * t for t in range(32)]
        stale_segments = (4096, 4096 + 128)  # 128 B precompute
        requests = unit.coalesce(addresses, AccessType.READ, segments=stale_segments)
        assert [r.address for r in requests] == unit.coalesce_addresses(addresses) == [4096]
        assert all(r.size == 256 for r in requests)

    def test_generated_traces_match_live_coalescing(self):
        from repro.workloads.generators import generate_workload
        from repro.workloads.suites import workload_by_name

        trace = generate_workload(
            workload_by_name("bfs1"), scale=0.1, seed=3, warps_per_sm=2,
            memory_instructions_per_warp=24,
        )
        unit = CoalescingUnit(request_bytes=128)
        for warp in trace.warps:
            for instruction in warp.instructions:
                assert instruction.segments is not None
                assert list(instruction.segments) == unit.coalesce_addresses(
                    instruction.addresses
                )
