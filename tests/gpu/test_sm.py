"""Unit tests for the SM and whole-GPU execution model."""

import pytest

from repro.config import GPUConfig
from repro.gpu.sm import GPUCore, StreamingMultiprocessor
from repro.gpu.warp import Instruction, WarpTrace
from repro.sim.request import AccessType, MemoryRequest, RequestResult


def constant_memory(latency=100.0):
    """A memory hook that completes every request after a fixed latency."""

    def hook(request: MemoryRequest, now: float) -> RequestResult:
        return RequestResult(
            request=request, start_cycle=now, completion_cycle=now + latency
        )

    return hook


class TestStreamingMultiprocessor:
    def test_compute_only_instruction(self):
        sm = StreamingMultiprocessor(0, GPUConfig())
        instr = Instruction(pc=0, compute_ops=4)
        ready = sm.execute_instruction(instr, warp_id=0, now=0.0, memory_fn=constant_memory())
        assert ready == pytest.approx(4.0)
        assert sm.stats.instructions == 4

    def test_memory_instruction_hits_hook_on_miss(self):
        sm = StreamingMultiprocessor(0, GPUConfig())
        instr = Instruction(pc=0, addresses=[0x1000], access=AccessType.READ)
        ready = sm.execute_instruction(instr, warp_id=0, now=0.0, memory_fn=constant_memory(50.0))
        assert ready >= 50.0
        assert sm.stats.memory_requests == 1

    def test_l1_hit_avoids_hook(self):
        sm = StreamingMultiprocessor(0, GPUConfig())
        calls = []

        def hook(request, now):
            calls.append(request.address)
            return RequestResult(request=request, start_cycle=now, completion_cycle=now + 100)

        instr = Instruction(pc=0, addresses=[0x1000], access=AccessType.READ)
        sm.execute_instruction(instr, 0, 0.0, hook)
        sm.execute_instruction(instr, 0, 200.0, hook)
        assert len(calls) == 1  # second access hits the L1
        assert sm.stats.l1_hits == 1

    def test_write_is_no_allocate(self):
        sm = StreamingMultiprocessor(0, GPUConfig())
        write = Instruction(pc=0, addresses=[0x1000], access=AccessType.WRITE)
        read = Instruction(pc=0, addresses=[0x1000], access=AccessType.READ)
        sm.execute_instruction(write, 0, 0.0, constant_memory())
        # A subsequent read should still miss (write did not allocate).
        sm.execute_instruction(read, 0, 100.0, constant_memory())
        assert sm.stats.l1_misses >= 1

    def test_reset(self):
        sm = StreamingMultiprocessor(0, GPUConfig())
        sm.execute_instruction(Instruction(pc=0, compute_ops=2), 0, 0.0, constant_memory())
        sm.reset()
        assert sm.stats.instructions == 0


class TestGPUCore:
    def test_empty_traces(self):
        core = GPUCore(GPUConfig())
        result = core.run([], constant_memory())
        assert result.ipc == 0.0

    def test_single_warp_compute(self):
        core = GPUCore(GPUConfig())
        trace = WarpTrace(warp_id=0, sm_id=0)
        for pc in range(10):
            trace.append(Instruction(pc=pc, compute_ops=1))
        result = core.run([trace], constant_memory())
        assert result.instructions == 10
        assert result.cycles >= 10.0
        assert result.ipc > 0

    def test_latency_hiding_across_warps(self):
        """Two warps on one SM should overlap memory latency."""
        config = GPUConfig()
        core = GPUCore(config)
        traces = []
        for warp_id in range(2):
            trace = WarpTrace(warp_id=warp_id, sm_id=0)
            trace.append(
                Instruction(pc=0, addresses=[0x1000 + warp_id * 4096], access=AccessType.READ)
            )
            traces.append(trace)
        result = core.run(traces, constant_memory(1000.0), max_resident_warps=2)
        # Both memory ops are in flight together, so total time is close to a
        # single latency rather than two serialised ones.
        assert result.cycles < 1900.0

    def test_residency_limit_serializes(self):
        config = GPUConfig()
        core = GPUCore(config)
        traces = []
        for warp_id in range(4):
            trace = WarpTrace(warp_id=warp_id, sm_id=0)
            trace.append(
                Instruction(pc=0, addresses=[warp_id * 4096], access=AccessType.READ)
            )
            traces.append(trace)
        limited = core.run(traces, constant_memory(1000.0), max_resident_warps=1)
        core.reset()
        parallel = core.run(traces, constant_memory(1000.0), max_resident_warps=4)
        assert limited.cycles > parallel.cycles

    def test_ipc_normalization(self):
        core = GPUCore(GPUConfig())
        trace = WarpTrace(warp_id=0, sm_id=0)
        for pc in range(5):
            trace.append(Instruction(pc=pc, compute_ops=1))
        a = core.run([trace], constant_memory())
        core.reset()
        b = core.run([trace], constant_memory())
        assert b.normalized_to(a) == pytest.approx(1.0)

    def test_warps_spread_across_sms(self):
        config = GPUConfig(num_sms=4)
        core = GPUCore(config)
        traces = [WarpTrace(warp_id=i, sm_id=i) for i in range(4)]
        for trace in traces:
            trace.append(Instruction(pc=0, compute_ops=3))
        result = core.run(traces, constant_memory())
        assert result.instructions == 12
