"""Tests for the pluggable cache replacement policies."""

import pytest

from repro.gpu.replacement import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MRUPolicy,
    build_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy),
        ("lfu", LFUPolicy), ("mru", MRUPolicy),
    ])
    def test_build(self, name, cls):
        assert isinstance(build_policy(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_policy("clock")


class TestPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LRUPolicy()
        last_use = {10: 1, 20: 5, 30: 3}
        assert policy.victim(last_use, {}, {}) == 10

    def test_mru_evicts_most_recent(self):
        policy = MRUPolicy()
        last_use = {10: 1, 20: 5, 30: 3}
        assert policy.victim(last_use, {}, {}) == 20

    def test_fifo_evicts_oldest_inserted(self):
        policy = FIFOPolicy()
        insert_order = {10: 1, 20: 2, 30: 0}
        assert policy.victim({}, insert_order, {}) == 30

    def test_lfu_evicts_least_frequent(self):
        policy = LFUPolicy()
        frequency = {10: 5, 20: 1, 30: 3}
        assert policy.victim({10: 9, 20: 9, 30: 9}, {}, frequency) == 20

    def test_lfu_breaks_ties_by_recency(self):
        policy = LFUPolicy()
        frequency = {10: 2, 20: 2}
        last_use = {10: 1, 20: 5}
        assert policy.victim(last_use, {}, frequency) == 10

    def test_empty_set(self):
        for policy in (LRUPolicy(), FIFOPolicy(), LFUPolicy(), MRUPolicy()):
            assert policy.victim({}, {}, {}) is None
