"""Tests for the schema registry: enumeration, coercion, validation."""

import pytest

from repro.config import default_config
from repro.configspace import (
    SCHEMA,
    ConfigPathError,
    ConfigValueError,
    ablation_axes,
)


class TestEnumeration:
    def test_every_path_is_dotted_and_sorted(self):
        paths = SCHEMA.paths()
        assert paths == sorted(paths)
        assert all("." in path for path in paths)

    def test_known_fields_present(self):
        for path in ("znand.channels", "gpu.l2_size_bytes",
                     "register_cache.registers_per_plane", "prefetch.policy",
                     "ftl.wear_leveling", "host.pcie_bandwidth_gbps"):
            assert path in SCHEMA

    def test_field_spec_carries_metadata(self):
        spec = SCHEMA.get("znand.channels")
        assert spec.type is int
        assert spec.default == 16
        assert spec.unit == "count"
        assert "Table I" in spec.doc

    def test_no_undocumented_fields(self):
        assert SCHEMA.undocumented() == []

    def test_defaults_match_config_instances(self):
        config = default_config()
        for spec in SCHEMA.fields():
            assert SCHEMA.read(config, spec.path) == spec.default

    def test_ablation_axes_declared(self):
        axes = ablation_axes()
        assert "register_cache.registers_per_plane" in axes
        assert axes["register_cache.registers_per_plane"] == (2, 4, 8, 16, 32)
        assert "prefetch.policy" in axes


class TestPathErrors:
    def test_unknown_group(self):
        with pytest.raises(ConfigPathError, match="no field 'nonsense'"):
            SCHEMA.get("nonsense.field")

    def test_unknown_field_names_owner(self):
        with pytest.raises(ConfigPathError, match="ZNANDConfig has no field"):
            SCHEMA.get("znand.bogus")

    def test_group_path_is_not_a_leaf(self):
        with pytest.raises(ConfigPathError, match="whole ZNANDConfig group"):
            SCHEMA.get("znand")

    def test_path_below_a_leaf_field_names_the_leaf(self):
        # gpu.l1_size_bytes exists; the problem is the trailing segment —
        # the error must not claim the field is missing.
        with pytest.raises(ConfigPathError, match="below the leaf field"):
            SCHEMA.get("gpu.l1_size_bytes.extra")

    def test_property_path_explains_derivation(self):
        # Satellite: overriding a @property-derived path must raise a clear,
        # actionable error — not a bare "no field".
        with pytest.raises(ConfigPathError, match="derived property"):
            SCHEMA.get("znand.total_planes")

    def test_path_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            SCHEMA.get("znand.total_planes")


class TestCoercion:
    def test_string_to_int(self):
        assert SCHEMA.coerce("znand.channels", "32") == 32

    def test_string_to_float(self):
        assert SCHEMA.coerce("znand.read_latency_us", "2.5") == 2.5

    def test_int_to_float_normalises(self):
        assert SCHEMA.coerce("znand.read_latency_us", 2) == 2.0

    def test_string_to_bool(self):
        assert SCHEMA.coerce("ftl.wear_leveling", "false") is False
        assert SCHEMA.coerce("ftl.wear_leveling", "true") is True

    def test_typed_values_pass_through(self):
        assert SCHEMA.coerce("znand.channels", 8) == 8
        assert SCHEMA.coerce("prefetch.policy", "stride") == "stride"

    def test_non_numeric_string_rejected(self):
        with pytest.raises(ConfigValueError, match="expects an int"):
            SCHEMA.coerce("znand.channels", "fast")

    def test_float_for_int_field_rejected(self):
        with pytest.raises(ConfigValueError, match="expects an int"):
            SCHEMA.coerce("znand.channels", 16.5)

    def test_bool_for_int_field_rejected(self):
        with pytest.raises(ConfigValueError, match="got bool"):
            SCHEMA.coerce("znand.channels", True)

    def test_string_for_numeric_field_rejected(self):
        with pytest.raises(ConfigValueError):
            SCHEMA.coerce("gpu.l2_size_bytes", "big")

    def test_number_for_enum_field_rejected(self):
        with pytest.raises(ConfigValueError, match="expects a string"):
            SCHEMA.coerce("prefetch.policy", 3)

    def test_unknown_choice_rejected(self):
        with pytest.raises(ConfigValueError, match="must be one of"):
            SCHEMA.coerce("prefetch.policy", "psychic")

    def test_below_minimum_rejected(self):
        with pytest.raises(ConfigValueError, match=">="):
            SCHEMA.coerce("znand.channels", 0)

    def test_above_maximum_rejected(self):
        with pytest.raises(ConfigValueError, match="<="):
            SCHEMA.coerce("ftl.gc_free_block_threshold", 1.5)


class TestApply:
    def test_apply_leaf_override(self):
        out = SCHEMA.apply(default_config(), {"znand.channels": 8})
        assert out.znand.channels == 8

    def test_apply_coerces_strings(self):
        out = SCHEMA.apply(default_config(), {"znand.channels": "8"})
        assert out.znand.channels == 8

    def test_apply_leaves_original_untouched(self):
        config = default_config()
        SCHEMA.apply(config, {"znand.channels": 8})
        assert config.znand.channels == 16

    def test_apply_empty_is_identity(self):
        config = default_config()
        assert SCHEMA.apply(config, {}) is config


class TestInvariants:
    def test_defaults_satisfy_invariants(self):
        SCHEMA.check_invariants(default_config())

    def test_l1_geometry_violation_detected(self):
        with pytest.raises(ConfigValueError, match="l1-geometry"):
            SCHEMA.apply(default_config(), {"gpu.l1_sets": 32})

    def test_l1_geometry_consistent_override_accepted(self):
        out = SCHEMA.apply(
            default_config(),
            {"gpu.l1_sets": 32, "gpu.l1_size_bytes": 32 * 6 * 128},
        )
        assert out.gpu.l1_sets == 32

    def test_prefetch_granularity_order_enforced(self):
        with pytest.raises(ConfigValueError, match="prefetch-granularity"):
            SCHEMA.apply(default_config(), {"prefetch.min_prefetch_bytes": 8192})

    def test_prefetch_threshold_vs_counter_enforced(self):
        with pytest.raises(ConfigValueError, match="prefetch-threshold"):
            SCHEMA.apply(default_config(), {"prefetch.prefetch_threshold": 200})

    def test_validate_false_skips_value_checks(self):
        out = SCHEMA.apply(
            default_config(), {"gpu.l1_sets": 32}, validate=False)
        assert out.gpu.l1_sets == 32

    def test_validate_false_still_rejects_bad_paths(self):
        with pytest.raises(ConfigPathError):
            SCHEMA.apply(default_config(), {"znand.bogus": 1}, validate=False)
