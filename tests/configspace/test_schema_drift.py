"""Schema-drift gate (CI satellite).

A golden file (``tests/data/config_schema_paths.txt``) pins every dotted
config path together with its type, unit and provenance doc.  Adding a config
field without ``table_field`` metadata — or changing the schema without
regenerating the golden file — fails here with regeneration instructions.
"""

from pathlib import Path

from repro.configspace import SCHEMA

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "config_schema_paths.txt"

REGENERATE = (
    "regenerate with: PYTHONPATH=src python -m repro config --golden "
    "> tests/data/config_schema_paths.txt"
)


def test_every_config_field_has_schema_metadata():
    # A field added to repro/config.py without table_field(unit=..., doc=...)
    # lands here before it lands anywhere else.
    assert SCHEMA.undocumented() == [], (
        "config fields missing unit/doc metadata — declare them with "
        f"table_field(): {SCHEMA.undocumented()}"
    )


def test_schema_matches_golden_file():
    golden_lines = GOLDEN.read_text().splitlines()
    current_lines = SCHEMA.golden_lines()
    added = sorted(set(current_lines) - set(golden_lines))
    removed = sorted(set(golden_lines) - set(current_lines))
    assert current_lines == golden_lines, (
        f"config schema drifted from the golden file "
        f"({len(added)} added/changed, {len(removed)} removed/changed); "
        f"review the diff and {REGENERATE}\n"
        f"added:   {[line.split(chr(9))[0] for line in added]}\n"
        f"removed: {[line.split(chr(9))[0] for line in removed]}"
    )


def test_golden_file_is_sorted_and_complete():
    lines = GOLDEN.read_text().splitlines()
    paths = [line.split("\t")[0] for line in lines]
    assert paths == sorted(paths)
    assert len(paths) == len(SCHEMA)
