"""Equivalence proofs for the configspace refactor.

Two families of guarantees:

* For every platform (and for representative override scenarios), the
  declarative preset/layered path resolves to a :class:`PlatformConfig`
  equal to what the pre-refactor constructors produced — the old munge is
  reimplemented inline here as the golden semantics.
* Sweep results stay bit-identical across the serial, cached and
  preset-built paths (cache v3 keys differ from v2 by design; payloads are
  what must match).
"""

from dataclasses import replace

import pytest

from repro.config import default_config
from repro.configspace import get_preset, resolve_platform_config
from repro.platforms import build_platform
from repro.platforms.zng import PLATFORM_NAMES, ZnGVariant
from repro.runner import SweepRunner, SweepSpec, apply_overrides

ALL_PLATFORMS = ["GDDR5"] + PLATFORM_NAMES

#: Representative override scenarios of the evaluation (axis points that
#: interact with the ZnG platform deltas, and ones that do not).
SCENARIOS = {
    "default": {},
    "reg16": {"register_cache.registers_per_plane": 16},
    "wide-channels": {"znand.channels": 32},
    "big-l2": {"stt_mram.size_bytes": 48 * 1024 * 1024},
    "swnet": {"register_cache.interconnect": "swnet"},
}


def legacy_platform_config(name, config):
    """The pre-refactor constructor munge, frozen here as golden semantics."""
    for variant in ZnGVariant:
        if variant.value == name:
            registers = (
                config.register_cache.registers_per_plane
                if variant.has_write_optimization
                else config.znand.registers_per_plane
            )
            return config.copy(
                znand=replace(
                    config.znand,
                    flash_network_type="mesh",
                    registers_per_plane=registers,
                )
            )
    return config  # the four baselines never touched their config


class TestPlatformConfigEquivalence:
    @pytest.mark.parametrize("platform", ALL_PLATFORMS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_layered_resolution_matches_legacy_munge(self, platform, scenario):
        base = apply_overrides(default_config(), SCENARIOS[scenario])
        expected = legacy_platform_config(platform, base)
        assert resolve_platform_config(platform, base).config == expected

    @pytest.mark.parametrize("platform", ALL_PLATFORMS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_built_platform_runs_the_resolved_config(self, platform, scenario):
        base = apply_overrides(default_config(), SCENARIOS[scenario])
        built = build_platform(platform, base)
        assert built.config == legacy_platform_config(platform, base)

    def test_cell_resolved_config_feeds_the_same_platform_config(self):
        spec = SweepSpec.create(
            platforms=["ZnG"], workloads=["betw-back"],
            overrides={"reg16": SCENARIOS["reg16"]},
        )
        cell = spec.cells()[0]
        built = build_platform(cell.platform, cell.resolved_config())
        assert built.config.znand.registers_per_plane == 16


class TestSweepEquivalence:
    def test_preset_spec_equals_explicit_spec(self):
        preset_spec = get_preset("smoke").spec()
        explicit = SweepSpec.create(
            platforms=["ZnG-base", "ZnG"],
            workloads=["betw-back", "bfs1-gaus"],
            scale=0.08,
            seed=1,
            warps_per_sm=2,
        )
        assert preset_spec == explicit
        assert [c.cache_key() for c in preset_spec.cells()] == [
            c.cache_key() for c in explicit.cells()
        ]

    def test_serial_cached_and_preset_results_bit_identical(self, tmp_path):
        spec = get_preset("smoke").spec(scale=0.05, workloads=["bfs1"])
        cold = SweepRunner(workers=1, cache=tmp_path / "cache").run(spec)
        warm = SweepRunner(workers=1, cache=tmp_path / "cache").run(spec)
        uncached = SweepRunner(workers=1, cache=False).run(spec)
        assert warm.cache_hits == len(spec)
        assert cold.stats_dicts() == warm.stats_dicts() == uncached.stats_dicts()
        for a, b in zip(cold, warm):
            assert a.result.ipc == b.result.ipc
            assert a.result.cycles == b.result.cycles
