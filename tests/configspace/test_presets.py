"""Tests for the experiment-preset registry."""

import pytest

from repro.configspace import (
    EXPERIMENT_PRESETS,
    SCHEMA,
    axis_overrides,
    get_preset,
    preset_names,
)
from repro.configspace.presets import EVAL_PLATFORMS, ZNG_VARIANTS


class TestRegistry:
    def test_expected_presets_exist(self):
        for name in ("fig10", "fig11", "smoke", "reg-sweep", "l2-sweep",
                     "prefetch-sweep", "interconnect-sweep",
                     "table1-sensitivity", "zng-ablation", "quickstart"):
            assert name in EXPERIMENT_PRESETS

    def test_get_preset_unknown_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            get_preset("nope")

    def test_preset_names_sorted(self):
        assert preset_names() == sorted(preset_names())

    def test_platform_name_constants_match_registry(self):
        from repro.platforms.zng import PLATFORM_NAMES

        assert list(EVAL_PLATFORMS) == PLATFORM_NAMES
        assert all(v in PLATFORM_NAMES for v in ZNG_VARIANTS)


class TestSpecExpansion:
    def test_every_preset_expands_to_a_valid_spec(self):
        # Platform names, workload tokens and override paths/values all
        # validate here — a preset referencing a renamed field fails loudly.
        for name in preset_names():
            spec = get_preset(name).spec()
            assert len(spec.cells()) > 0

    def test_spec_kwargs_override_preset_values(self):
        spec = get_preset("smoke").spec(scale=0.01, workloads=["bfs1"])
        assert spec.scale == 0.01
        assert spec.workloads == ("bfs1",)
        # Unoverridden knobs keep the preset's values.
        assert spec.warps_per_sm == 2

    def test_axis_preset_carries_labelled_points(self):
        spec = get_preset("reg-sweep").spec()
        labels = {o.label for o in spec.overrides}
        assert labels == {f"registers_per_plane={v}"
                          for v in (2, 4, 8, 16, 32)}

    def test_table1_sensitivity_covers_every_schema_axis(self):
        preset = get_preset("table1-sensitivity")
        covered_paths = set()
        for _, items in preset.overrides:
            covered_paths.update(path for path, _ in items)
        assert covered_paths == set(SCHEMA.ablation_axes())

    def test_table1_sensitivity_loses_no_point_to_label_collisions(self):
        # Labels are full dotted paths, so axes sharing a leaf field name
        # (e.g. a future znand.registers_per_plane axis next to
        # register_cache.registers_per_plane) can never overwrite each other.
        preset = get_preset("table1-sensitivity")
        expected = sum(len(v) for v in SCHEMA.ablation_axes().values())
        assert len(preset.overrides) == expected
        for label, items in preset.overrides:
            assert label.startswith(items[0][0])


class TestAxisOverrides:
    def test_defaults_to_schema_ablation_values(self):
        axis = axis_overrides("prefetch.prefetch_threshold")
        assert axis == {
            f"prefetch_threshold={v}": {"prefetch.prefetch_threshold": v}
            for v in (1, 4, 8, 12, 15)
        }

    def test_explicit_values_win(self):
        axis = axis_overrides("znand.channels", values=[4, 8])
        assert set(axis) == {"channels=4", "channels=8"}

    def test_axisless_path_requires_values(self):
        with pytest.raises(KeyError, match="no canonical ablation values"):
            axis_overrides("znand.pages_per_block")

    def test_every_declared_axis_value_validates(self):
        # Each canonical value must pass its own field's coercion/bounds.
        for path, values in SCHEMA.ablation_axes().items():
            for value in values:
                assert SCHEMA.coerce(path, value) == value
