"""Tests for the strict canonical encoder and config fingerprints."""

import math

import pytest

from repro.config import default_config
from repro.configspace import (
    CanonicalEncodingError,
    canonical_json,
    canonical_payload,
    config_fingerprint,
    resolve_platform_config,
)


class TestCanonicalEncoder:
    def test_plain_values_round_trip(self):
        payload = {"a": 1, "b": 2.5, "c": "x", "d": True, "e": None}
        assert canonical_payload(payload) == payload

    def test_tuples_become_lists(self):
        assert canonical_payload((1, 2, (3,))) == [1, 2, [3]]

    def test_dataclasses_become_field_mappings(self):
        payload = canonical_payload(default_config())
        assert payload["znand"]["channels"] == 16

    def test_output_is_deterministic(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_unencodable_object_raises_with_path(self):
        with pytest.raises(CanonicalEncodingError, match=r"\$\.cell\[1\]"):
            canonical_json({"cell": [1, object()]})

    def test_set_raises_instead_of_stringifying(self):
        # json.dumps(default=str) would have silently encoded this.
        with pytest.raises(CanonicalEncodingError, match="set"):
            canonical_json({"values": {1, 2}})

    def test_nan_raises(self):
        with pytest.raises(CanonicalEncodingError, match="non-finite"):
            canonical_json({"x": math.nan})

    def test_non_string_mapping_key_raises(self):
        with pytest.raises(CanonicalEncodingError, match="not a string"):
            canonical_json({1: "x"})


class TestConfigFingerprint:
    def test_equal_configs_fingerprint_identically(self):
        assert config_fingerprint(default_config()) == config_fingerprint(
            default_config())

    def test_any_field_change_changes_fingerprint(self):
        from repro.configspace import SCHEMA

        base = config_fingerprint(default_config())
        changed = SCHEMA.apply(default_config(), {"znand.channels": 8})
        assert config_fingerprint(changed) != base

    def test_layered_and_constructor_paths_agree(self):
        # However a config was composed, equal content hashes equally.
        from repro.platforms import build_platform

        layered = resolve_platform_config("ZnG").config
        constructed = build_platform("ZnG").config
        assert config_fingerprint(layered) == config_fingerprint(constructed)
