"""Tests for layered composition, provenance and the platform layers."""

import pytest

from repro.config import default_config
from repro.configspace import (
    ConfigLayer,
    ConfigValueError,
    FieldRef,
    PLATFORM_LAYERS,
    platform_layer,
    resolve,
    resolve_platform_config,
)


def axis(name, overrides):
    return ConfigLayer.create(name, "axis", overrides)


class TestResolve:
    def test_empty_stack_yields_defaults(self):
        resolved = resolve([])
        assert resolved.config == default_config()
        assert resolved.origin("znand.channels") == "defaults"

    def test_later_layer_wins(self):
        resolved = resolve([
            axis("a", {"znand.channels": 8}),
            axis("b", {"znand.channels": 32}),
        ])
        assert resolved.config.znand.channels == 32
        assert resolved.origin("znand.channels") == "b"

    def test_provenance_tracks_setting_layer(self):
        resolved = resolve([axis("a", {"znand.channels": 8})])
        assert resolved.origin("znand.channels") == "a"
        assert resolved.origin("znand.dies_per_package") == "defaults"
        assert "[a]" in resolved.explain("znand.channels")

    def test_pinned_layer_applies_last(self):
        pin = ConfigLayer.create(
            "pin", "platform", {"znand.channels": 4}, pinned=True)
        resolved = resolve([pin, axis("late", {"znand.channels": 32})])
        assert resolved.config.znand.channels == 4
        assert resolved.origin("znand.channels") == "pin"

    def test_pin_records_shadowed_layers(self):
        pin = ConfigLayer.create(
            "pin", "platform", {"znand.channels": 4}, pinned=True)
        resolved = resolve([pin, axis("late", {"znand.channels": 32})])
        assert resolved.provenance["znand.channels"].shadowed == ("late",)
        assert "shadows: late" in resolved.explain("znand.channels")

    def test_field_ref_reads_composed_value(self):
        pin = ConfigLayer.create(
            "pin", "platform",
            {"znand.registers_per_plane":
                 FieldRef("register_cache.registers_per_plane")},
            pinned=True)
        resolved = resolve([
            axis("a", {"register_cache.registers_per_plane": 16}), pin])
        assert resolved.config.znand.registers_per_plane == 16

    def test_layer_values_are_coerced(self):
        resolved = resolve([axis("a", {"znand.channels": "8"})])
        assert resolved.config.znand.channels == 8

    def test_invariants_checked_on_result(self):
        with pytest.raises(ConfigValueError, match="l1-geometry"):
            resolve([axis("a", {"gpu.l1_sets": 32})])

    def test_base_config_used_as_floor(self):
        base = resolve([axis("a", {"znand.channels": 8})]).config
        resolved = resolve([], base=base)
        assert resolved.config.znand.channels == 8


class TestPlatformLayers:
    def test_baselines_have_empty_layers(self):
        for name in ("GDDR5", "Hetero", "HybridGPU", "Optane"):
            assert not platform_layer(name)

    def test_unregistered_platform_gets_empty_layer(self):
        assert not platform_layer("not-a-platform")

    def test_zng_layers_are_pinned(self):
        for name in ("ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG"):
            assert PLATFORM_LAYERS[name].pinned

    def test_zng_base_pins_mesh_only(self):
        resolved = resolve_platform_config("ZnG-base")
        assert resolved.config.znand.flash_network_type == "mesh"
        assert resolved.config.znand.registers_per_plane == 2

    def test_zng_pins_mesh_and_registers(self):
        resolved = resolve_platform_config("ZnG")
        assert resolved.config.znand.flash_network_type == "mesh"
        assert resolved.config.znand.registers_per_plane == 8
        assert resolved.origin("znand.registers_per_plane") == "platform:ZnG"

    def test_zng_register_pin_follows_write_cache_knob(self):
        extra = axis("reg16", {"register_cache.registers_per_plane": 16})
        resolved = resolve_platform_config("ZnG", extra_layers=[extra])
        assert resolved.config.znand.registers_per_plane == 16

    def test_platform_pin_beats_direct_override(self):
        # The mesh network is part of the ZnG identity: a direct override is
        # clobbered (and recorded as shadowed), matching the pre-refactor
        # constructor behaviour.
        extra = axis("bus", {"znand.flash_network_type": "bus"})
        resolved = resolve_platform_config("ZnG", extra_layers=[extra])
        assert resolved.config.znand.flash_network_type == "mesh"
        assert "bus" in resolved.provenance["znand.flash_network_type"].shadowed
