"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_help(self, capsys):
        assert main(["help"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "GPU" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "betw" in out and "pr" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        assert "bandwidth" in capsys.readouterr().out

    def test_run_requires_args(self, capsys):
        assert main(["run", "ZnG"]) == 2

    def test_run(self, capsys):
        assert main(["run", "HybridGPU", "betw", "back"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["fig10", "0.05"]) == 0
        assert "Figure 10" in capsys.readouterr().out


class TestSweepCommand:
    ARGS = [
        "sweep", "--platforms", "ZnG-base", "--workloads", "bfs1",
        "--workers", "1", "--scale", "0.05", "--warps", "2",
    ]

    def test_sweep_no_cache(self, capsys):
        assert main(self.ARGS + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "bfs1" in out and "1 cells" in out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(self.ARGS + cache) == 0
        assert "0 served from cache" in capsys.readouterr().out
        assert main(self.ARGS + cache) == 0
        assert "1 served from cache" in capsys.readouterr().out

    def test_sweep_override_axis(self, capsys):
        assert main(self.ARGS + [
            "--no-cache", "--set", "wide:znand.channels=32",
        ]) == 0
        assert "wide" in capsys.readouterr().out

    def test_sweep_unknown_option(self, capsys):
        assert main(["sweep", "--bogus", "1"]) == 2

    def test_sweep_missing_value(self, capsys):
        assert main(["sweep", "--platforms"]) == 2

    def test_sweep_unknown_platform(self, capsys):
        assert main(["sweep", "--platforms", "NoSuch", "--no-cache"]) == 2
        assert "unknown platform" in capsys.readouterr().out

    def test_sweep_unknown_workload(self, capsys):
        assert main(["sweep", "--workloads", "frobnicate", "--no-cache"]) == 2
        assert "unknown workload" in capsys.readouterr().out

    def test_sweep_bad_override_path(self, capsys):
        assert main(self.ARGS + ["--no-cache", "--set", "x:znand.bogus=1"]) == 2
        assert "no field" in capsys.readouterr().out

    def test_sweep_malformed_override(self, capsys):
        assert main(["sweep", "--set", "junk", "--no-cache"]) == 2
        assert "malformed override" in capsys.readouterr().out

    def test_sweep_type_mismatched_override_rejected(self, capsys):
        assert main(self.ARGS + [
            "--no-cache", "--set", "x:znand.channels=fast",
        ]) == 2
        assert "expects an int" in capsys.readouterr().out

    def test_sweep_property_override_rejected(self, capsys):
        assert main(self.ARGS + [
            "--no-cache", "--set", "x:znand.total_planes=4",
        ]) == 2
        assert "derived property" in capsys.readouterr().out

    def test_sweep_out_of_range_override_rejected(self, capsys):
        assert main(self.ARGS + [
            "--no-cache", "--set", "x:znand.channels=0",
        ]) == 2
        assert ">=" in capsys.readouterr().out

    def test_sweep_preset(self, capsys):
        assert main([
            "sweep", "--preset", "smoke", "--workloads", "bfs1",
            "--scale", "0.05", "--workers", "1", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "ZnG-base" in out and "2 cells" in out

    def test_sweep_unknown_preset(self, capsys):
        assert main(["sweep", "--preset", "nope", "--no-cache"]) == 2
        assert "unknown experiment preset" in capsys.readouterr().out

    def test_sweep_config_file(self, capsys, tmp_path):
        config_file = tmp_path / "overrides.json"
        config_file.write_text('{"znand.channels": 8}')
        assert main(self.ARGS + [
            "--no-cache", "--config-file", str(config_file),
        ]) == 0
        assert "1 cells" in capsys.readouterr().out

    def test_sweep_bad_config_file_value(self, capsys, tmp_path):
        config_file = tmp_path / "overrides.json"
        config_file.write_text('{"znand.channels": "fast"}')
        assert main(self.ARGS + [
            "--no-cache", "--config-file", str(config_file),
        ]) == 2
        assert "expects an int" in capsys.readouterr().out

    def test_sweep_missing_config_file(self, capsys, tmp_path):
        assert main(self.ARGS + [
            "--no-cache", "--config-file", str(tmp_path / "absent.json"),
        ]) == 2


class TestShardedSweepCLI:
    SMOKE = ["sweep", "--preset", "smoke", "--workers", "1", "--scale", "0.05"]

    def test_shard_writes_manifest_and_reports_coordinates(self, capsys, tmp_path):
        assert main(self.SMOKE + [
            "--cache-dir", str(tmp_path), "--shard", "1/2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[shard 1/2 of a 4-cell grid]" in out
        assert (tmp_path / "manifest.shard-1-of-2.json").exists()

    def test_unsharded_cached_sweep_writes_manifest_json(self, capsys, tmp_path):
        assert main(self.SMOKE + ["--cache-dir", str(tmp_path)]) == 0
        assert (tmp_path / "manifest.json").exists()

    def test_no_cache_sweep_writes_no_manifest(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.SMOKE + ["--no-cache", "--workloads", "bfs1"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_explicit_manifest_path_wins(self, capsys, tmp_path):
        manifest = tmp_path / "elsewhere" / "m.json"
        assert main(self.SMOKE + [
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest),
        ]) == 0
        assert manifest.exists()

    @pytest.mark.parametrize("bad", ["0/3", "4/3", "x/3", "2", "1/0"])
    def test_shard_flag_validation(self, capsys, bad):
        assert main(self.SMOKE + ["--no-cache", "--shard", bad]) == 2
        assert "--shard expects" in capsys.readouterr().out

    def test_merge_round_trip_and_withheld_shard(self, capsys, tmp_path):
        manifests = []
        for index in (1, 2):
            cache = tmp_path / f"shard{index}"
            assert main(self.SMOKE + [
                "--cache-dir", str(cache), "--shard", f"{index}/2",
            ]) == 0
            manifests.append(str(cache / f"manifest.shard-{index}-of-2.json"))
        capsys.readouterr()

        assert main(["merge"] + manifests) == 0
        out = capsys.readouterr().out
        assert "merged 2 manifest(s): 4 cells, complete and unique" in out
        assert "ipc table:" in out

        assert main(["merge", manifests[0]]) == 1
        assert "merge failed:" in capsys.readouterr().out

    def test_merge_requires_manifests(self, capsys):
        assert main(["merge"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_merge_unknown_option(self, capsys):
        assert main(["merge", "--bogus", "x"]) == 2

    def test_merge_non_numeric_metric_rejected(self, capsys, tmp_path):
        assert main(self.SMOKE + ["--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        manifest = str(tmp_path / "manifest.json")
        for metric in ("platform", "stats", "nope"):
            assert main(["merge", manifest, "--metric", metric]) == 2
            assert "unknown metric" in capsys.readouterr().out

    def test_resume_rejects_conflicting_flags(self, capsys, tmp_path):
        manifest = str(tmp_path / "m.json")
        assert main(["sweep", "--resume", manifest, "--shard", "1/2"]) == 2
        assert "--resume takes" in capsys.readouterr().out
        assert main(["sweep", "--resume", manifest,
                     "--manifest", str(tmp_path / "other.json")]) == 2
        assert "--resume takes" in capsys.readouterr().out

    def test_resume_round_trip(self, capsys, tmp_path):
        assert main(self.SMOKE + ["--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main([
            "sweep", "--resume", str(tmp_path / "manifest.json"),
            "--workers", "1",
        ]) == 0
        assert "4 served from cache" in capsys.readouterr().out

    def test_resume_rejects_no_cache(self, capsys, tmp_path):
        assert main([
            "sweep", "--resume", str(tmp_path / "m.json"), "--no-cache",
        ]) == 2
        assert "--resume needs the result cache" in capsys.readouterr().out

    def test_resume_missing_manifest(self, capsys, tmp_path):
        assert main([
            "sweep", "--resume", str(tmp_path / "absent.json"),
        ]) == 2

    def test_perf_report_path_override(self, capsys, tmp_path):
        target = tmp_path / "bench" / "report.json"
        assert main(self.SMOKE + [
            "--no-cache", "--workloads", "bfs1",
            "--perf-report", "--perf-report-path", str(target),
        ]) == 0
        assert target.exists()
        assert "perf report written to" in capsys.readouterr().out

    def test_default_perf_report_path_is_repo_root_not_cwd(self, tmp_path, monkeypatch):
        from repro.__main__ import _default_perf_report_path

        monkeypatch.chdir(tmp_path)
        default = _default_perf_report_path()
        assert default.name == "BENCH_sweep.json"
        assert default.parent != tmp_path
        assert (default.parent / "pytest.ini").exists()


class TestReportCommand:
    SMOKE = ["sweep", "--preset", "smoke", "--workers", "1", "--scale", "0.05"]

    def _manifest(self, tmp_path, capsys) -> str:
        assert main(self.SMOKE + ["--cache-dir", str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        return str(tmp_path / "cache" / "manifest.json")

    def test_legacy_textual_report_still_works(self, capsys):
        assert main(["report", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Figure 10" in out

    def test_report_emits_csvs_and_html(self, capsys, tmp_path):
        manifest = self._manifest(tmp_path, capsys)
        out_dir = tmp_path / "artifacts"
        assert main(["report", manifest, "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        for name in ("metrics.csv", "fig10.csv", "fig11.csv",
                     "scenarios.csv", "report.html", "bench.html"):
            assert (out_dir / name).exists(), name
            assert name in out

    def test_report_no_html_emits_only_csvs(self, capsys, tmp_path):
        manifest = self._manifest(tmp_path, capsys)
        out_dir = tmp_path / "artifacts"
        assert main(["report", manifest, "--out", str(out_dir),
                     "--no-html", "--no-plots"]) == 0
        assert not (out_dir / "report.html").exists()
        assert (out_dir / "metrics.csv").exists()

    def test_report_check_flags_drift_against_goldens(self, capsys, tmp_path):
        # The smoke-preset grid is not the golden fig10 grid, so --check
        # must fail loudly — drift, not silence, for a mismatched spec.
        manifest = self._manifest(tmp_path, capsys)
        out_dir = tmp_path / "artifacts"
        assert main(["report", manifest, "--out", str(out_dir),
                     "--check", "--no-plots", "--no-html"]) == 1
        out = capsys.readouterr().out
        assert "GOLDEN DRIFT" in out and "--golden" in out

    def test_report_missing_manifest_exits_1(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "absent.json")]) == 1
        assert "report failed" in capsys.readouterr().out

    def test_report_usage_and_bad_flags(self, capsys, tmp_path):
        assert main(["report", "--out", str(tmp_path)]) == 2
        assert "usage" in capsys.readouterr().out
        assert main(["report", "--bogus", "x"]) == 2
        assert main(["report", "--out"]) == 2
        assert main(["report", "x.json", "--workers", "two"]) == 2

    def test_report_golden_rejects_manifest_paths(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "m.json"), "--golden"]) == 2
        assert "--golden" in capsys.readouterr().out


class TestConfigCommand:
    def test_list_paths(self, capsys):
        assert main(["config", "--list-paths"]) == 0
        out = capsys.readouterr().out
        assert "znand.channels" in out
        assert "overridable paths" in out

    def test_explain(self, capsys):
        assert main(["config", "--explain", "znand.registers_per_plane"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        # The ZnG write-optimised presets pin this path.
        assert "ZnG" in out and "register_cache.registers_per_plane" in out

    def test_explain_unknown_path(self, capsys):
        assert main(["config", "--explain", "znand.bogus"]) == 2
        assert "no field" in capsys.readouterr().out

    def test_explain_requires_path(self, capsys):
        assert main(["config", "--explain"]) == 2

    def test_diff(self, capsys):
        assert main(["config", "--diff", "ZnG-base", "ZnG"]) == 0
        out = capsys.readouterr().out
        assert "znand.registers_per_plane" in out
        assert "platform:ZnG" in out
        assert "fingerprints:" in out

    def test_diff_unknown_platform(self, capsys):
        assert main(["config", "--diff", "ZnG", "NoSuch"]) == 2
        assert "unknown platform" in capsys.readouterr().out

    def test_presets(self, capsys):
        assert main(["config", "--presets"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1-sensitivity" in out

    def test_golden(self, capsys):
        assert main(["config", "--golden"]) == 0
        assert "znand.channels\tint" in capsys.readouterr().out

    def test_no_args_usage(self, capsys):
        assert main(["config"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_option(self, capsys):
        assert main(["config", "--bogus"]) == 2


class TestWorkloadsCommand:
    def test_list(self, capsys):
        assert main(["workloads", "--list"]) == 0
        out = capsys.readouterr().out
        assert "kv-lookup" in out and "multi-tenant" in out
        assert "betw" in out  # Table II apps are families too
        assert "20 families" in out

    def test_explain(self, capsys):
        assert main(["workloads", "--explain", "kv-lookup"]) == 0
        out = capsys.readouterr().out
        assert "get_ratio" in out and "zipf" in out and "default" in out

    def test_explain_typo_did_you_mean(self, capsys):
        assert main(["workloads", "--explain", "kv-lokup"]) == 2
        assert "did you mean kv-lookup" in capsys.readouterr().out

    def test_explain_requires_name(self, capsys):
        assert main(["workloads", "--explain"]) == 2

    def test_golden(self, capsys):
        assert main(["workloads", "--golden"]) == 0
        out = capsys.readouterr().out
        assert "kv-lookup:zipf\tfloat" in out

    def test_record_and_replay_verify(self, capsys, tmp_path):
        trace_path = tmp_path / "kv.trace.json"
        assert main(["workloads", "--record", "kv-lookup:zipf=1.1",
                     "--out", str(trace_path),
                     "--scale", "0.05", "--warps", "2"]) == 0
        out = capsys.readouterr().out
        assert "recorded kv-lookup:zipf=1.1" in out
        assert trace_path.exists()
        assert main(["workloads", "--replay", str(trace_path),
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "content hash verified" in out
        assert "bit-identical" in out

    def test_record_requires_out(self, capsys):
        assert main(["workloads", "--record", "betw"]) == 2

    def test_record_bad_token(self, capsys, tmp_path):
        assert main(["workloads", "--record", "kv-lokup",
                     "--out", str(tmp_path / "x.json")]) == 2
        assert "did you mean" in capsys.readouterr().out

    def test_replay_corrupted_file_exits_1(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "kv.trace.json"
        assert main(["workloads", "--record", "kv-lookup",
                     "--out", str(trace_path),
                     "--scale", "0.05", "--warps", "2"]) == 0
        payload = json.loads(trace_path.read_text())
        payload["trace"]["footprint_pages"] += 1
        trace_path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["workloads", "--replay", str(trace_path)]) == 1
        assert "content-hash verification" in capsys.readouterr().out

    def test_no_args_usage(self, capsys):
        assert main(["workloads"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_option(self, capsys):
        assert main(["workloads", "--bogus"]) == 2


class TestParametricSweepCLI:
    def test_sweep_parameterised_token(self, capsys):
        assert main([
            "sweep", "--platforms", "ZnG-base",
            "--workloads", "kv-lookup:zipf=1.1",
            "--workers", "1", "--scale", "0.05", "--warps", "2", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "kv-lookup:zipf=1.1" in out and "1 cells" in out

    def test_sweep_trace_replay_token(self, capsys, tmp_path):
        trace_path = tmp_path / "mt.trace.json"
        assert main(["workloads", "--record", "multi-tenant:phases=2",
                     "--out", str(trace_path),
                     "--scale", "0.05", "--warps", "2"]) == 0
        capsys.readouterr()
        assert main([
            "sweep", "--platforms", "ZnG-base",
            "--workloads", f"trace:{trace_path}",
            "--workers", "1", "--scale", "0.05", "--warps", "2", "--no-cache",
        ]) == 0
        assert "1 cells" in capsys.readouterr().out

    def test_sweep_workload_typo_fails_fast_with_hint(self, capsys):
        # The pre-sweep validation satellite: a typo must die at spec
        # creation (exit 2, no cells run), with a suggestion.
        assert main(["sweep", "--workloads", "kv-lokup", "--no-cache"]) == 2
        assert "did you mean kv-lookup" in capsys.readouterr().out

    def test_sweep_bad_family_param_fails_fast(self, capsys):
        assert main(["sweep", "--workloads", "kv-lookup:zipf=nope",
                     "--no-cache"]) == 2
        assert "expects a float" in capsys.readouterr().out

    def test_scenario_preset_listed(self, capsys):
        assert main(["config", "--presets"]) == 0
        out = capsys.readouterr().out
        assert "scenario-suite" in out and "kv-sweep" in out
        assert "multi-tenant" in out

    def test_replay_verify_unresolvable_token_exits_1(self, capsys, tmp_path):
        # A hash-valid archive whose recorded family this build no longer
        # registers must fail --verify cleanly, not with a traceback.
        from repro.workloads.registry import TraceKnobs, build_trace
        from repro.workloads.tracefile import write_trace_file

        trace = build_trace("betw", TraceKnobs(scale=0.05, warps_per_sm=2))
        trace_path = tmp_path / "old.trace.json"
        write_trace_file(trace_path, trace, workload="retired-family",
                         knobs={"scale": 0.05})
        assert main(["workloads", "--replay", str(trace_path),
                     "--verify"]) == 1
        assert "unknown workload" in capsys.readouterr().out
