"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_help(self, capsys):
        assert main(["help"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "GPU" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "betw" in out and "pr" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        assert "bandwidth" in capsys.readouterr().out

    def test_run_requires_args(self, capsys):
        assert main(["run", "ZnG"]) == 2

    def test_run(self, capsys):
        assert main(["run", "HybridGPU", "betw", "back"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["fig10", "0.05"]) == 0
        assert "Figure 10" in capsys.readouterr().out
