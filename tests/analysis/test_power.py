"""Unit tests for the power / energy model."""

import pytest

from repro.analysis.power import (
    PowerBreakdown,
    compare_static_power_per_gb,
    dram_subsystem_power,
    gpu_dram_vs_znand_capacity,
    technology_static_power,
    znand_power,
)
from repro.config import GDDR5, GPU_FREQ_HZ, ZNAND_TECH


class TestStaticPower:
    def test_matches_technology_rate(self):
        assert technology_static_power(GDDR5, 12.0) == pytest.approx(60.0)
        assert technology_static_power(ZNAND_TECH, 64.0) == pytest.approx(1.28)

    def test_compare_per_gb(self):
        data = compare_static_power_per_gb()
        assert data["GDDR5"] == max(data.values())
        assert data["Z-NAND"] == min(data.values())


class TestPowerBreakdown:
    def test_total_power(self):
        breakdown = PowerBreakdown(
            name="x", capacity_gb=10.0, static_power_w=5.0,
            dynamic_energy_j=2.0, runtime_s=1.0,
        )
        assert breakdown.dynamic_power_w == pytest.approx(2.0)
        assert breakdown.total_power_w == pytest.approx(7.0)
        assert breakdown.total_energy_j == pytest.approx(7.0)

    def test_power_per_gb(self):
        breakdown = PowerBreakdown(
            name="x", capacity_gb=10.0, static_power_w=5.0,
            dynamic_energy_j=0.0, runtime_s=1.0,
        )
        assert breakdown.power_per_gb == pytest.approx(0.5)

    def test_zero_runtime_safe(self):
        breakdown = PowerBreakdown("x", 1.0, 1.0, 1.0, 0.0)
        assert breakdown.dynamic_power_w == 0.0


class TestDRAMAndZNand:
    def test_dram_energy_scales_with_accesses(self):
        few = dram_subsystem_power(GDDR5, 12.0, accesses=100, runtime_cycles=GPU_FREQ_HZ)
        many = dram_subsystem_power(GDDR5, 12.0, accesses=1000, runtime_cycles=GPU_FREQ_HZ)
        assert many.dynamic_energy_j > few.dynamic_energy_j

    def test_znand_program_costs_more_than_read(self):
        reads = znand_power(64.0, reads=100, programs=0, erases=0, runtime_cycles=GPU_FREQ_HZ)
        programs = znand_power(64.0, reads=0, programs=100, erases=0, runtime_cycles=GPU_FREQ_HZ)
        assert programs.dynamic_energy_j > reads.dynamic_energy_j

    def test_znand_lower_static_power_than_gddr5(self):
        znand = znand_power(64.0, reads=0, programs=0, erases=0, runtime_cycles=GPU_FREQ_HZ)
        dram = dram_subsystem_power(GDDR5, 12.0, accesses=0, runtime_cycles=GPU_FREQ_HZ)
        # Z-NAND provisions 64 GB at less static power than 12 GB of GDDR5.
        assert znand.static_power_w < dram.static_power_w


class TestCapacityArgument:
    def test_znand_provisions_more_per_watt(self):
        data = gpu_dram_vs_znand_capacity()
        assert data["Z-NAND"] > data["GDDR5"] * 100
