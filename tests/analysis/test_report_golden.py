"""Golden-number regression gate for the report artifacts.

The CSVs emitted by ``python -m repro report`` are canonical text (shortest
round-trip float repr, LF newlines), so they can be byte-compared: against
the committed goldens in ``tests/data/report/`` (any simulator change that
moves a paper number fails here first), and between a serial sweep and one
merged from shard manifests (sharding must never change a number).

Regenerate intentionally changed goldens with::

    python -m repro report --golden
"""

import math
from pathlib import Path

import pytest

from repro.analysis import reporting
from repro.analysis.reporting import (
    GOLDEN_SCALE,
    ReportError,
    canonical_number,
    compare_csv_dirs,
    csv_cell,
    default_golden_dir,
    default_sensitivity_golden_dir,
    golden_result,
    golden_spec,
    report_tables,
    sensitivity_golden_result,
    sensitivity_golden_spec,
    write_csv,
    write_report,
)


class TestCanonicalFormatting:
    def test_floats_use_shortest_roundtrip_repr(self):
        # repr() of a float is the shortest string that round-trips — a
        # CPython guarantee, identical across platforms.  Spot-check values
        # whose %g renderings would lose digits.
        assert canonical_number(0.1) == "0.1"
        assert canonical_number(1 / 3) == "0.3333333333333333"
        assert canonical_number(0.1593140228982792) == "0.1593140228982792"
        assert float(canonical_number(math.pi)) == math.pi

    def test_integers_render_bare(self):
        assert canonical_number(7) == "7"
        assert canonical_number(10**18) == str(10**18)

    def test_negative_zero_normalises(self):
        assert canonical_number(-0.0) == "0.0"
        assert canonical_number(0.0) == "0.0"

    def test_bools_do_not_leak_python_repr(self):
        assert canonical_number(True) == "true"
        assert canonical_number(False) == "false"

    def test_non_finite_refuses(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ReportError):
                canonical_number(bad)

    def test_text_cells_quote_rfc4180(self):
        assert csv_cell("plain") == "plain"
        assert csv_cell("a,b") == '"a,b"'
        assert csv_cell('say "hi"') == '"say ""hi"""'

    def test_write_csv_is_lf_and_byte_stable(self, tmp_path):
        rows = [["a", 0.1, 3], ["b", 2.5, 4]]
        first = write_csv(tmp_path / "one.csv", ["name", "x", "n"], rows)
        second = write_csv(tmp_path / "two.csv", ["name", "x", "n"], rows)
        data = first.read_bytes()
        assert data == second.read_bytes()
        assert b"\r" not in data
        assert data.endswith(b"\n")
        assert data.decode().splitlines()[1] == "a,0.1,3"


@pytest.fixture(scope="module")
def golden_sweep():
    return golden_result()


class TestGoldenGate:
    def test_goldens_match_rederived_sweep(self, golden_sweep, tmp_path_factory):
        """THE gate: the committed goldens equal a fresh fixed-seed sweep."""
        derived = tmp_path_factory.mktemp("derived")
        write_report(golden_sweep, derived, plots=False, html_report=False)
        drift = compare_csv_dirs(derived, default_golden_dir())
        assert drift == [], "\n".join(drift)

    def test_goldens_exist_and_cover_every_table(self, golden_sweep):
        names = {f"{name}.csv" for name in report_tables(golden_sweep)}
        committed = {p.name for p in default_golden_dir().glob("*.csv")}
        assert committed == names

    def test_golden_spec_is_the_ci_fig10_grid(self):
        spec = golden_spec()
        assert spec.scale == GOLDEN_SCALE
        assert "ZnG" in spec.platforms
        assert len(spec) == len(spec.platforms) * len(spec.workloads)

    def test_perturbed_metric_fails_the_gate(self, golden_sweep, tmp_path):
        write_report(golden_sweep, tmp_path, plots=False, html_report=False)
        target = tmp_path / "fig10.csv"
        text = target.read_text()
        perturbed = text.replace(",1.0", ",1.0000000000000002", 1)
        assert perturbed != text
        target.write_text(perturbed)
        drift = compare_csv_dirs(tmp_path, default_golden_dir())
        assert any("fig10.csv" in message for message in drift)

    def test_missing_derived_csv_is_drift(self, golden_sweep, tmp_path):
        write_report(golden_sweep, tmp_path, plots=False, html_report=False)
        (tmp_path / "metrics.csv").unlink()
        drift = compare_csv_dirs(tmp_path, default_golden_dir())
        assert any("metrics.csv" in message for message in drift)

    def test_empty_golden_dir_reports_itself(self, tmp_path):
        derived = tmp_path / "derived"
        derived.mkdir()
        drift = compare_csv_dirs(derived, tmp_path / "nonexistent")
        assert len(drift) == 1 and "--golden" in drift[0]


@pytest.fixture(scope="module")
def sensitivity_sweep():
    return sensitivity_golden_result()


class TestSensitivityGoldenGate:
    def test_sensitivity_goldens_match_rederived_sweep(
        self, sensitivity_sweep, tmp_path_factory
    ):
        """The override-axis surface gate: sensitivity.csv et al. vs goldens."""
        derived = tmp_path_factory.mktemp("sensitivity_derived")
        write_report(sensitivity_sweep, derived, plots=False, html_report=False)
        drift = compare_csv_dirs(derived, default_sensitivity_golden_dir())
        assert drift == [], "\n".join(drift)

    def test_sensitivity_goldens_include_the_sensitivity_table(self):
        committed = {p.name for p in default_sensitivity_golden_dir().glob("*.csv")}
        assert "sensitivity.csv" in committed

    def test_golden_surface_spans_both_backends(self):
        spec = sensitivity_golden_spec()
        labels = {override.label for override in spec.overrides}
        assert labels == {"backend=scalar", "backend=vectorized"}

    def test_backend_labels_carry_identical_metrics(self, sensitivity_sweep):
        """The equivalence pin: scalar and vectorized rows are value-equal."""
        tables = report_tables(sensitivity_sweep)
        header, rows = tables["sensitivity"]
        by_backend = {}
        for row in rows:
            label, rest = row[0], tuple(row[1:])
            by_backend.setdefault(label, []).append(rest)
        assert by_backend["backend=scalar"] == by_backend["backend=vectorized"]


class TestShardedReportEquality:
    def test_merged_two_shard_report_equals_serial(self, golden_sweep, tmp_path):
        """Sharding is presentation-free: merged CSV bytes == serial bytes."""
        from repro.runner import SweepRunner, default_manifest_name
        from repro.analysis.reporting import report_from_manifests

        spec = golden_spec()
        cache_dir = tmp_path / "cache"
        manifest_paths = []
        for index in range(2):
            runner = SweepRunner(workers=1, cache=cache_dir)
            manifest = cache_dir / default_manifest_name(index, 2)
            runner.run(spec.shard(index, 2), manifest_path=manifest)
            manifest_paths.append(manifest)

        merged_dir = tmp_path / "merged"
        serial_dir = tmp_path / "serial"
        report_from_manifests(manifest_paths, merged_dir,
                              plots=False, html_report=False)
        write_report(golden_sweep, serial_dir, plots=False, html_report=False)
        for path in sorted(serial_dir.glob("*.csv")):
            assert (merged_dir / path.name).read_bytes() == path.read_bytes(), (
                f"{path.name} differs between merged-shard and serial reports")


class TestReportArtifacts:
    def test_html_report_embeds_tables_and_provenance(self, golden_sweep, tmp_path):
        written = write_report(golden_sweep, tmp_path, plots=False)
        html_text = written["report.html"].read_text()
        assert golden_sweep.spec.fingerprint() in html_text
        for name in report_tables(golden_sweep):
            assert f"{name}.csv" in html_text
        assert "bench.html" in html_text
        assert written["bench.html"].exists()

    def test_report_generates_without_matplotlib(self, golden_sweep, tmp_path,
                                                 monkeypatch):
        import builtins

        real_import = builtins.__import__

        def no_mpl(name, *args, **kwargs):
            if name.startswith("matplotlib"):
                raise ImportError("matplotlib disabled for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_mpl)
        written = write_report(golden_sweep, tmp_path, plots=True)
        assert "report.html" in written
        assert not list(tmp_path.glob("*.png"))
        assert "matplotlib" in written["report.html"].read_text()

    def test_sensitivity_table_appears_for_override_sweeps(self):
        from repro.runner import SweepSpec, run_sweep

        spec = SweepSpec.create(
            platforms=["ZnG-base", "ZnG"],
            workloads=["betw-back"],
            overrides={"lo": {"gpu.num_sms": 8}, "hi": {"gpu.num_sms": 16}},
            scale=0.05,
        )
        tables = report_tables(run_sweep(spec, workers=1, cache=False))
        assert "sensitivity" in tables
        header, rows = tables["sensitivity"]
        assert header[0] == "override"
        assert {row[0] for row in rows} == {"lo", "hi"}

    def test_bench_trajectory_degrades_outside_git(self, tmp_path):
        from repro.analysis.reporting import bench_trajectory

        assert bench_trajectory(tmp_path / "missing.json") == []
        payload = tmp_path / "BENCH_sweep.json"
        payload.write_text('{"executed_cells_per_sec": 42.0}')
        points = bench_trajectory(payload)
        assert points and points[-1]["commit"] == "working-tree"
        assert points[-1]["executed_cells_per_sec"] == 42.0
