"""Tests for the sensitivity-analysis sweeps."""

from dataclasses import replace

import pytest

from repro.analysis import sensitivity
from repro.config import PlatformConfig


class TestSweeps:
    def test_registers_sweep_covers_values(self):
        results = sensitivity.sweep_registers_per_plane(values=[2, 8], scale=0.1)
        assert set(results) == {2, 8}
        for result in results.values():
            assert result.ipc > 0

    def test_more_registers_improves_hit_rate(self):
        results = sensitivity.sweep_registers_per_plane(values=[2, 16], scale=0.12)
        hit2 = results[2].extra.get("register_hit_rate", 0.0)
        hit16 = results[16].extra.get("register_hit_rate", 0.0)
        assert hit16 >= hit2 - 0.05

    def test_l2_sweep(self):
        results = sensitivity.sweep_l2_size(sizes_mb=[6, 24], scale=0.1)
        assert set(results) == {6, 24}

    def test_larger_l2_no_worse_hit_rate(self):
        results = sensitivity.sweep_l2_size(sizes_mb=[6, 48], scale=0.12)
        assert results[48].l2_hit_rate >= results[6].l2_hit_rate - 0.05

    def test_prefetch_threshold_sweep(self):
        results = sensitivity.sweep_prefetch_threshold(thresholds=[1, 12], scale=0.1)
        assert set(results) == {1, 12}

    def test_interconnect_sweep(self):
        results = sensitivity.sweep_interconnect(scale=0.1)
        assert set(results) == {"swnet", "fcnet", "nif"}

    def test_generic_sweep(self):
        def apply(config: PlatformConfig, value):
            return config.copy(
                register_cache=replace(config.register_cache, registers_per_plane=value)
            )

        results = sensitivity.generic_sweep(apply, values=[4, 8], scale=0.1)
        assert set(results) == {4, 8}


class TestAxisFromResult:
    """axis_from_result pivots an already-run axis sweep (e.g. shard-merged)."""

    def test_round_trips_a_sweep_axis_result(self, tmp_path):
        from repro.runner import SweepRunner, merge_manifests

        values = [4, 8]
        direct = sensitivity.sweep_registers_per_plane(values=values, scale=0.1)

        # The same axis run as 2 shards, merged from manifests.
        from repro.runner import SweepSpec
        spec = SweepSpec.create(
            platforms=["ZnG"],
            workloads=[sensitivity.SWEEP_WORKLOAD],
            overrides={str(v): {"register_cache.registers_per_plane": v}
                       for v in values},
            scale=0.1,
            seed=sensitivity.SWEEP_SEED,
            warps_per_sm=sensitivity.SWEEP_WARPS_PER_SM,
            memory_instructions_per_warp=sensitivity.SWEEP_MEM_INSTS,
        )
        paths = []
        for index in range(2):
            root = tmp_path / f"shard{index}"
            SweepRunner(workers=1, cache=root).run(
                spec.shard(index, 2), manifest_path=root / "manifest.json")
            paths.append(root / "manifest.json")
        merged = merge_manifests(paths)

        rebuilt = sensitivity.axis_from_result(merged, values)
        assert {v: r.ipc for v, r in rebuilt.items()} == \
            {v: r.ipc for v, r in direct.items()}
        assert {v: r.stats.as_dict() for v, r in rebuilt.items()} == \
            {v: r.stats.as_dict() for v, r in direct.items()}

    def test_missing_label_raises(self):
        result = sensitivity.sweep_interconnect(kinds=["swnet"], scale=0.1)
        with pytest.raises(KeyError):
            sensitivity.axis_from_result(
                _as_sweep_result_like(result), ["fcnet"])


def _as_sweep_result_like(value_results):
    """Adapt a {value: PlatformResult} mapping back to an iterable of runs."""
    from repro.runner import OverrideSet

    class _Run:
        def __init__(self, label, result):
            self.cell = type("C", (), {"override_set": OverrideSet(label)})()
            self.result = result

    return [_Run(str(value), result) for value, result in value_results.items()]


class TestWorkloadAxis:
    def _result(self, workloads, platforms=("ZnG",)):
        from repro.runner import SweepSpec, run_sweep

        return run_sweep(SweepSpec.create(
            platforms=list(platforms), workloads=workloads,
            scale=0.05, warps_per_sm=2))

    def test_pivot_by_family_parameter(self):
        from repro.analysis.sensitivity import workload_axis_from_result

        result = self._result(["kv-lookup:zipf=0.6", "kv-lookup",
                               "kv-lookup:zipf=1.2"])
        axis = workload_axis_from_result(result, "kv-lookup", "zipf")
        assert list(axis) == [0.6, 0.99, 1.2]  # defaults resolve too

    def test_ambiguous_cells_raise_instead_of_overwriting(self):
        from repro.analysis.sensitivity import workload_axis_from_result

        two_platforms = self._result(["kv-lookup:zipf=1.1"],
                                     platforms=("ZnG-base", "ZnG"))
        with pytest.raises(ValueError, match="ambiguous pivot"):
            workload_axis_from_result(two_platforms, "kv-lookup", "zipf")
        axis = workload_axis_from_result(
            two_platforms, "kv-lookup", "zipf", platform="ZnG")
        assert list(axis) == [1.1]
        differing_other_param = self._result(
            ["kv-lookup:zipf=1.1", "kv-lookup:get_ratio=0.5,zipf=1.1"])
        with pytest.raises(ValueError, match="ambiguous pivot"):
            workload_axis_from_result(
                differing_other_param, "kv-lookup", "zipf")

    def test_typoed_param_gets_a_did_you_mean(self):
        from repro.analysis.sensitivity import workload_axis_from_result

        result = self._result(["kv-lookup"])
        with pytest.raises(ValueError, match="did you mean zipf"):
            workload_axis_from_result(result, "kv-lookup", "zip")
