"""Tests for the sensitivity-analysis sweeps."""

from dataclasses import replace

import pytest

from repro.analysis import sensitivity
from repro.config import PlatformConfig


class TestSweeps:
    def test_registers_sweep_covers_values(self):
        results = sensitivity.sweep_registers_per_plane(values=[2, 8], scale=0.1)
        assert set(results) == {2, 8}
        for result in results.values():
            assert result.ipc > 0

    def test_more_registers_improves_hit_rate(self):
        results = sensitivity.sweep_registers_per_plane(values=[2, 16], scale=0.12)
        hit2 = results[2].extra.get("register_hit_rate", 0.0)
        hit16 = results[16].extra.get("register_hit_rate", 0.0)
        assert hit16 >= hit2 - 0.05

    def test_l2_sweep(self):
        results = sensitivity.sweep_l2_size(sizes_mb=[6, 24], scale=0.1)
        assert set(results) == {6, 24}

    def test_larger_l2_no_worse_hit_rate(self):
        results = sensitivity.sweep_l2_size(sizes_mb=[6, 48], scale=0.12)
        assert results[48].l2_hit_rate >= results[6].l2_hit_rate - 0.05

    def test_prefetch_threshold_sweep(self):
        results = sensitivity.sweep_prefetch_threshold(thresholds=[1, 12], scale=0.1)
        assert set(results) == {1, 12}

    def test_interconnect_sweep(self):
        results = sensitivity.sweep_interconnect(scale=0.1)
        assert set(results) == {"swnet", "fcnet", "nif"}

    def test_generic_sweep(self):
        def apply(config: PlatformConfig, value):
            return config.copy(
                register_cache=replace(config.register_cache, registers_per_plane=value)
            )

        results = sensitivity.generic_sweep(apply, values=[4, 8], scale=0.1)
        assert set(results) == {4, 8}
