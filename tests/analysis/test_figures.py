"""Tests for the figure-reproduction entry points.

These run at a small scale and check the *shape* of each figure's output,
which is what the reproduction guarantees.
"""

import numpy as np
import pytest

from repro.analysis import figures

QUICK = dict(scale=0.08)
QUICK_MIXES = [("betw", "back"), ("bfs1", "gaus")]


class TestFigure1b:
    def test_gddr5_dominates_components(self):
        data = figures.figure_1b()
        assert data["GDDR5"] > data["DRAM buffer"]
        assert data["GDDR5"] > data["SSD engine"]
        assert data["GDDR5"] > data["Flash channel"]

    def test_all_components_present(self):
        data = figures.figure_1b()
        assert {"GDDR5", "DRAM buffer", "Flash channel", "Flash read",
                "Flash write", "SSD engine"} <= set(data)


class TestFigure3:
    def test_znand_densest(self):
        data = figures.figure_3()
        densities = {k: v["density_gb"] for k, v in data.items()}
        assert densities["Z-NAND"] == max(densities.values())

    def test_gddr5_highest_power(self):
        data = figures.figure_3()
        powers = {k: v["power_w_per_gb"] for k, v in data.items()}
        assert powers["GDDR5"] == max(powers.values())


class TestFigure4c:
    def test_gddr5_fastest(self):
        data = figures.figure_4c()
        assert data["GDDR5"] == max(data.values())

    def test_ssd_systems_slowest(self):
        data = figures.figure_4c()
        assert data["HybridGPU"] < data["GDDR5"]
        assert data["ZSSD (GPU-SSD)"] < data["GDDR5"]


class TestFigure4d:
    def test_breakdowns_sum_to_one(self):
        data = figures.figure_4d(scale=0.08)
        for fractions in data.values():
            if fractions:
                assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)

    def test_hybrid_gpu_dominated_by_ssd(self):
        data = figures.figure_4d(scale=0.08)
        hybrid = data["HybridGPU"]
        ssd_share = hybrid.get("ssd_engine", 0) + hybrid.get("ssd_dispatcher", 0) + hybrid.get(
            "flash_array", 0
        ) + hybrid.get("dram_buffer", 0)
        assert ssd_share > 0.5


class TestFigure5a:
    def test_degradation_above_one(self):
        data = figures.figure_5a(scale=0.08, mixes=QUICK_MIXES)
        for value in data.values():
            assert value > 1.0


class TestFigure5bc:
    def test_reaccess_positive(self):
        data = figures.figure_5b(scale=0.08, mixes=QUICK_MIXES)
        assert all(v > 0 for v in data.values())

    def test_write_redundancy_positive(self):
        data = figures.figure_5c(scale=0.08, mixes=QUICK_MIXES)
        assert all(v > 0 for v in data.values())


class TestFigure5d:
    def test_fractions_sum_to_one(self):
        data = figures.figure_5d(scale=0.08)
        for fractions in data.values():
            assert fractions["read"] + fractions["write"] == pytest.approx(1.0)

    def test_deg_mostly_reads(self):
        data = figures.figure_5d(scale=0.08)
        assert data["deg"]["read"] > 0.95


class TestFigure8b:
    def test_heatmap_shape_and_writes(self):
        heatmap = figures.figure_8b(scale=0.08)
        assert isinstance(heatmap, np.ndarray)
        assert heatmap.sum() > 0

    def test_writes_asymmetric(self):
        heatmap = figures.figure_8b(scale=0.15)
        # Different planes should see different write counts.
        assert heatmap.max() > heatmap.min()


class TestFigure10:
    def test_normalized_to_zng(self):
        data = figures.figure_10(scale=0.08, mixes=QUICK_MIXES)
        for row in data.values():
            assert row["ZnG"] == pytest.approx(1.0)

    def test_zng_beats_hybrid_and_hetero(self):
        """Robust at any scale: ZnG beats the prior-work integrated SSD."""
        data = figures.figure_10(scale=0.08, mixes=QUICK_MIXES)
        for row in data.values():
            assert row["ZnG"] > row["HybridGPU"]
            assert row["ZnG"] > row["Hetero"]

    def test_optimizations_beat_base(self):
        data = figures.figure_10(scale=0.08, mixes=QUICK_MIXES)
        for row in data.values():
            assert row["ZnG"] >= row["ZnG-base"]

    def test_zng_best_at_scale(self):
        """The headline ordering (ZnG fastest) emerges under the paper's regime
        of large data sets and high thread-level parallelism."""
        from repro.platforms import build_platform
        from repro.workloads.multiapp import build_mix

        mix = build_mix("betw", "back", scale=0.4, seed=1,
                        warps_per_sm=16, memory_instructions_per_warp=96)
        ipc = {
            name: build_platform(name).run(mix.combined).ipc
            for name in ["HybridGPU", "Optane", "ZnG"]
        }
        assert ipc["ZnG"] == max(ipc.values())


class TestFigure11:
    def test_zng_highest_flash_bandwidth(self):
        data = figures.figure_11(scale=0.08, mixes=QUICK_MIXES)
        for row in data.values():
            assert row["ZnG"] >= row["HybridGPU"]


class TestFiguresFromMergedResults:
    """figure_*_from_result plug an already-run (e.g. shard-merged) sweep in."""

    def _sharded_merge(self, tmp_path, platforms):
        from repro.runner import SweepRunner, SweepSpec, merge_manifests

        # Identical grid + trace knobs to figure_10/figure_11(scale=0.08,
        # mixes=QUICK_MIXES): the trace knobs stay at the spec defaults.
        spec = SweepSpec.create(
            platforms=platforms,
            workloads=["betw-back", "bfs1-gaus"],
            scale=0.08,
        )
        paths = []
        for index in range(2):
            root = tmp_path / f"shard{index}"
            SweepRunner(workers=1, cache=root).run(
                spec.shard(index, 2), manifest_path=root / "manifest.json")
            paths.append(root / "manifest.json")
        return spec, merge_manifests(paths)

    def test_figure_10_from_merged_result_matches_direct_run(self, tmp_path):
        platforms = ["HybridGPU", "ZnG-base", "ZnG"]
        _, merged = self._sharded_merge(tmp_path, platforms)
        direct = figures.figure_10(scale=0.08, mixes=QUICK_MIXES,
                                   platforms=platforms)
        assert figures.figure_10_from_result(merged) == direct

    def test_figure_11_from_merged_result_matches_direct_run(self, tmp_path):
        platforms = ["HybridGPU", "ZnG-base", "ZnG"]
        _, merged = self._sharded_merge(tmp_path, platforms)
        direct = figures.figure_11(scale=0.08, mixes=QUICK_MIXES,
                                   platforms=platforms)
        assert figures.figure_11_from_result(merged) == direct
