"""Tests for the analytic-vs-measured validation helpers."""

import math

import pytest

from repro.analysis import validation


class TestAnalyticModels:
    def test_accumulated_exceeds_single_plane(self):
        single = validation.analytic_plane_read_bandwidth()
        accumulated = validation.analytic_accumulated_flash_bandwidth()
        assert accumulated > single

    def test_mesh_wider_than_bus(self):
        assert (
            validation.analytic_mesh_link_bandwidth()
            > validation.analytic_bus_link_bandwidth()
        )


class TestMeasurements:
    def test_mesh_channel_matches_analytic(self):
        analytic = validation.analytic_mesh_link_bandwidth()
        measured = validation.measure_single_channel_bandwidth("mesh")
        assert abs(measured - analytic) / analytic < 0.1

    def test_bus_channel_matches_analytic(self):
        analytic = validation.analytic_bus_link_bandwidth()
        measured = validation.measure_single_channel_bandwidth("bus")
        assert abs(measured - analytic) / analytic < 0.1

    def test_plane_bandwidth_matches_analytic(self):
        analytic = validation.analytic_plane_read_bandwidth()
        measured = validation.measure_single_plane_bandwidth()
        assert abs(measured - analytic) / analytic < 0.1


class TestValidateAll:
    def test_all_within_tolerance(self):
        results = validation.validate_all()
        for result in results.values():
            assert result.within(0.1), f"{result.name}: {result.relative_error:.2%}"

    def test_result_relative_error(self):
        result = validation.ValidationResult("x", analytic=100.0, measured=110.0)
        assert result.relative_error == pytest.approx(0.1)
        assert result.within(0.2)
        assert not result.within(0.05)

    def test_zero_analytic_mismatch_is_not_a_perfect_match(self):
        # A model that predicts 0 but measures 5 used to report 0.0 relative
        # error and pass every tolerance; it must fail all of them instead.
        result = validation.ValidationResult("x", analytic=0.0, measured=5.0)
        assert result.relative_error == math.inf
        assert not result.within(0.5)
        assert not result.within(1e9)

    def test_zero_analytic_zero_measured_agrees(self):
        result = validation.ValidationResult("x", analytic=0.0, measured=0.0)
        assert result.relative_error == 0.0
        assert result.within(0.0)
