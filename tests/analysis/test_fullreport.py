"""Tests for the full report generator."""

import pytest

from repro.analysis.fullreport import generate_report


def test_report_contains_all_sections():
    report = generate_report(scale=0.05, mixes=[("betw", "back")])
    for marker in [
        "Table I", "Table II", "Figure 1b", "Figure 3a", "Figure 3b",
        "Figure 4c", "Figure 5a", "Figure 5b", "Figure 5c",
        "Figure 10", "Figure 11",
    ]:
        assert marker in report

    def test_report_is_nonempty_text():
        report = generate_report(scale=0.05, mixes=[("betw", "back")])
        assert len(report.splitlines()) > 30
