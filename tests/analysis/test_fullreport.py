"""Tests for the full report generator."""

import pytest

from repro.analysis.fullreport import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(scale=0.05, mixes=[("betw", "back")])


def test_report_contains_all_sections(report):
    for marker in [
        "Table I", "Table II", "Figure 1b", "Figure 3a", "Figure 3b",
        "Figure 4c", "Figure 5a", "Figure 5b", "Figure 5c",
        "Figure 10", "Figure 11",
    ]:
        assert marker in report


def test_report_is_nonempty_text(report):
    # This assertion used to be nested inside the previous test and never ran.
    assert len(report.splitlines()) > 30


def test_result_sections_match_generate_report(report):
    """The shared result-derived sections are exactly what the report embeds."""
    from repro.analysis.fullreport import _evaluation_result, result_sections

    sections = result_sections(_evaluation_result(0.05, [("betw", "back")]))
    assert len(sections) == 2
    for section in sections:
        assert section in report
