"""Tests for the configuration/workload table reproduction."""

import pytest

from repro.analysis.tables import table_1_configuration, table_2_workloads


class TestTable1:
    def test_structure(self):
        table = table_1_configuration()
        assert "GPU" in table
        assert "Z-NAND array" in table
        assert "STT-MRAM L2" in table

    def test_gpu_values(self):
        gpu = table_1_configuration()["GPU"]
        assert gpu["SMs"] == 16
        assert gpu["frequency_ghz"] == pytest.approx(1.2)
        assert gpu["max_warps_per_sm"] == 80

    def test_znand_values(self):
        znand = table_1_configuration()["Z-NAND array"]
        assert znand["channels"] == 16
        assert znand["cell_type"] == "SLC"
        assert znand["read_latency_us"] == 3.0
        assert znand["program_latency_us"] == 100.0

    def test_stt_mram_values(self):
        stt = table_1_configuration()["STT-MRAM L2"]
        assert stt["size_mb"] == 24
        assert stt["write_latency_cycles"] == 5


class TestTable2:
    def test_sixteen_workloads(self):
        assert len(table_2_workloads()) == 16

    def test_rows_have_expected_fields(self):
        for row in table_2_workloads():
            assert set(row) == {"workload", "suite", "read_ratio", "kernels"}

    def test_deg_is_read_only(self):
        rows = {r["workload"]: r for r in table_2_workloads()}
        assert rows["deg"]["read_ratio"] == 1.0
