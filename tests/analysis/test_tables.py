"""Tests for the configuration/workload table reproduction."""

import pytest

from repro.analysis.tables import table_1_configuration, table_2_workloads


class TestTable1:
    def test_structure(self):
        table = table_1_configuration()
        assert "GPU" in table
        assert "Z-NAND array" in table
        assert "STT-MRAM L2" in table

    def test_gpu_values(self):
        gpu = table_1_configuration()["GPU"]
        assert gpu["SMs"] == 16
        assert gpu["frequency_ghz"] == pytest.approx(1.2)
        assert gpu["max_warps_per_sm"] == 80

    def test_znand_values(self):
        znand = table_1_configuration()["Z-NAND array"]
        assert znand["channels"] == 16
        assert znand["cell_type"] == "SLC"
        assert znand["read_latency_us"] == 3.0
        assert znand["program_latency_us"] == 100.0

    def test_stt_mram_values(self):
        stt = table_1_configuration()["STT-MRAM L2"]
        assert stt["size_mb"] == 24
        assert stt["write_latency_cycles"] == 5


class TestTable2:
    def test_rows_cover_every_registered_family(self):
        from repro.workloads.registry import family_names

        assert [r["workload"] for r in table_2_workloads()] == family_names()

    def test_table2_apps_keep_paper_values(self):
        from repro.workloads.suites import ALL_WORKLOADS

        rows = {r["workload"]: r for r in table_2_workloads()}
        for name, spec in ALL_WORKLOADS.items():
            assert rows[name]["read_ratio"] == spec.read_ratio
            assert rows[name]["kernels"] == spec.kernels
            assert rows[name]["suite"] == spec.suite

    def test_rows_have_expected_fields(self):
        for row in table_2_workloads():
            assert set(row) == {"workload", "suite", "read_ratio",
                                "kernels", "params"}

    def test_parametric_families_present_without_paper_knobs(self):
        rows = {r["workload"]: r for r in table_2_workloads()}
        assert rows["kv-lookup"]["read_ratio"] is None
        assert rows["kv-lookup"]["kernels"] is None
        assert rows["kv-lookup"]["params"] == 4

    def test_deg_is_read_only(self):
        rows = {r["workload"]: r for r in table_2_workloads()}
        assert rows["deg"]["read_ratio"] == 1.0

    def test_rendered_table_aligns_dashed_family_names(self):
        from repro.analysis.report import format_records_table

        text = format_records_table(
            "Table II — workload families",
            ["workload", "suite", "read_ratio", "kernels", "params"],
            table_2_workloads(),
            formats={"read_ratio": "{:.2f}"},
        )
        lines = text.splitlines()
        header, body = lines[2], lines[3:]
        # Full dashed names survive (the old {:8s} column sheared them) and
        # the name column is wide enough for the longest family everywhere.
        assert any(line.startswith("embedding-inference") for line in body)
        longest = max(len(r["workload"]) for r in table_2_workloads())
        assert header[:longest].strip() == "workload"
        names = {r["workload"] for r in table_2_workloads()}
        for line in body:
            assert line[:longest].strip() in names
