"""Unit tests for the analysis metric helpers."""

import pytest

from repro.analysis.metrics import (
    bandwidth_gbps,
    geomean_speedup,
    mean,
    normalized_ipc,
    ordering_satisfied,
    speedup,
)
from repro.config import GPU_FREQ_HZ


class FakeResult:
    def __init__(self, ipc):
        self.ipc = ipc


class TestNormalizedIPC:
    def test_normalizes_to_reference(self):
        results = {"a": FakeResult(2.0), "b": FakeResult(1.0)}
        normalized = normalized_ipc(results, reference="b")
        assert normalized["a"] == pytest.approx(2.0)
        assert normalized["b"] == pytest.approx(1.0)

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError):
            normalized_ipc({"a": FakeResult(1.0)}, reference="z")

    def test_zero_reference(self):
        results = {"a": FakeResult(2.0), "b": FakeResult(0.0)}
        normalized = normalized_ipc(results, reference="b")
        assert all(v == 0.0 for v in normalized.values())


class TestSpeedup:
    def test_basic(self):
        assert speedup(FakeResult(4.0), FakeResult(2.0)) == pytest.approx(2.0)

    def test_zero_baseline(self):
        assert speedup(FakeResult(4.0), FakeResult(0.0)) == 0.0

    def test_geomean_speedup(self):
        per_workload = {
            "w1": {"fast": FakeResult(4.0), "slow": FakeResult(1.0)},
            "w2": {"fast": FakeResult(9.0), "slow": FakeResult(1.0)},
        }
        # geomean(4, 9) = 6
        assert geomean_speedup(per_workload, "fast", "slow") == pytest.approx(6.0)


class TestBandwidth:
    def test_bandwidth_conversion(self):
        # GPU_FREQ cycles is exactly one second; moving GPU_FREQ bytes in that
        # time is GPU_FREQ bytes/s, i.e. GPU_FREQ / 1e9 GB/s.
        bw = bandwidth_gbps(GPU_FREQ_HZ, GPU_FREQ_HZ)
        assert bw == pytest.approx(GPU_FREQ_HZ / 1e9)

    def test_zero_cycles(self):
        assert bandwidth_gbps(100.0, 0.0) == 0.0


class TestHelpers:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_ordering_satisfied(self):
        scores = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ordering_satisfied(scores, ["a", "b", "c"])
        assert not ordering_satisfied(scores, ["c", "b", "a"])

    def test_ordering_ignores_missing(self):
        scores = {"a": 3.0, "c": 1.0}
        assert ordering_satisfied(scores, ["a", "b", "c"])
