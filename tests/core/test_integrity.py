"""End-to-end data-integrity tests for the zero-overhead FTL."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FTLConfig, ZNANDConfig
from repro.core.helper_gc import HelperThreadGC
from repro.core.integrity import IntegrityModel, install_integrity_tracking
from repro.core.zero_overhead_ftl import ZeroOverheadFTL
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def make_ftl(pages_per_block=8, blocks=16, data_blocks_per_log_block=4):
    config = ZNANDConfig(
        channels=2, dies_per_package=1, planes_per_die=2,
        blocks_per_plane=blocks, pages_per_block=pages_per_block,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    ftl = ZeroOverheadFTL(array, FTLConfig(data_blocks_per_log_block=data_blocks_per_log_block))
    ftl.helper_gc = HelperThreadGC(ftl, array)
    return ftl


class TestBasicIntegrity:
    def test_read_after_write(self):
        ftl = make_ftl()
        ftl.setup_mapping(16)
        model = install_integrity_tracking(ftl)
        model.write(3, value=42)
        assert model.read(3) == 42

    def test_overwrite_returns_latest(self):
        ftl = make_ftl()
        ftl.setup_mapping(16)
        model = install_integrity_tracking(ftl)
        model.write(3, value=1)
        model.write(3, value=2)
        model.write(3, value=3)
        assert model.read(3) == 3

    def test_independent_pages(self):
        ftl = make_ftl()
        ftl.setup_mapping(16)
        model = install_integrity_tracking(ftl)
        model.write(0, value=100)
        model.write(1, value=200)
        assert model.read(0) == 100
        assert model.read(1) == 200

    def test_unwritten_page_reads_none(self):
        ftl = make_ftl()
        ftl.setup_mapping(16)
        model = install_integrity_tracking(ftl)
        assert model.read(5) is None


class TestIntegrityThroughGC:
    def test_values_survive_gc_merges(self):
        ftl = make_ftl(pages_per_block=4, blocks=32)
        ftl.setup_mapping(16)
        model = install_integrity_tracking(ftl)
        rng = random.Random(1)
        expected = {}
        for step in range(300):
            vp = rng.randint(0, 15)
            value = rng.randint(0, 10_000_000)
            model.write(vp, value, now=step * 1000.0)
            expected[vp] = value
        assert ftl.gc_merges > 0, "test should exercise GC"
        for vp, value in expected.items():
            assert model.read(vp) == value


class TestProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 1_000_000)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_last_write_wins(self, ops):
        ftl = make_ftl(pages_per_block=8, blocks=32)
        ftl.setup_mapping(8)
        model = install_integrity_tracking(ftl)
        expected = {}
        for i, (vp, value) in enumerate(ops):
            model.write(vp, value, now=i * 1000.0)
            expected[vp] = value
        for vp, value in expected.items():
            assert model.read(vp) == value
