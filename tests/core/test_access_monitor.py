"""Unit tests for the prefetch access monitor."""

import pytest

from repro.config import PrefetchConfig
from repro.core.access_monitor import AccessMonitor
from repro.gpu.cache import EvictionRecord


def wasted_record():
    return EvictionRecord(address=0, dirty=False, prefetched=True, accessed=False)


def useful_record():
    return EvictionRecord(address=0, dirty=False, prefetched=True, accessed=True)


class TestAccessMonitor:
    def test_high_waste_shrinks_granularity(self):
        config = PrefetchConfig(monitor_window_evictions=10, high_waste_threshold=0.3)
        monitor = AccessMonitor(config)
        start = monitor.granularity_bytes
        for _ in range(10):
            monitor.observe_eviction(wasted_record())
        assert monitor.granularity_bytes < start

    def test_low_waste_grows_granularity(self):
        config = PrefetchConfig(
            monitor_window_evictions=10, low_waste_threshold=0.05,
            initial_prefetch_bytes=1024, max_prefetch_bytes=4096,
        )
        monitor = AccessMonitor(config)
        start = monitor.granularity_bytes
        for _ in range(10):
            monitor.observe_eviction(useful_record())
        assert monitor.granularity_bytes > start

    def test_granularity_floor(self):
        config = PrefetchConfig(
            monitor_window_evictions=4, high_waste_threshold=0.1,
            initial_prefetch_bytes=256, min_prefetch_bytes=128,
        )
        monitor = AccessMonitor(config)
        for _ in range(40):
            monitor.observe_eviction(wasted_record())
        assert monitor.granularity_bytes >= config.min_prefetch_bytes

    def test_granularity_ceiling(self):
        config = PrefetchConfig(
            monitor_window_evictions=4, low_waste_threshold=0.9,
            initial_prefetch_bytes=4096, max_prefetch_bytes=4096,
        )
        monitor = AccessMonitor(config)
        for _ in range(40):
            monitor.observe_eviction(useful_record())
        assert monitor.granularity_bytes <= config.max_prefetch_bytes

    def test_no_adjustment_before_window(self):
        config = PrefetchConfig(monitor_window_evictions=10)
        monitor = AccessMonitor(config)
        for _ in range(5):
            snapshot = monitor.observe_eviction(wasted_record())
            assert snapshot is None

    def test_window_boundary_returns_snapshot(self):
        config = PrefetchConfig(monitor_window_evictions=4)
        monitor = AccessMonitor(config)
        snapshots = [monitor.observe_eviction(wasted_record()) for _ in range(4)]
        assert snapshots[-1] is not None
        assert snapshots[-1].waste_ratio == pytest.approx(1.0)

    def test_overall_waste_ratio(self):
        monitor = AccessMonitor(PrefetchConfig(monitor_window_evictions=1000))
        monitor.observe_eviction(wasted_record())
        monitor.observe_eviction(useful_record())
        assert monitor.overall_waste_ratio == pytest.approx(0.5)

    def test_non_prefetched_eviction_not_wasteful(self):
        monitor = AccessMonitor(PrefetchConfig(monitor_window_evictions=1000))
        record = EvictionRecord(address=0, dirty=False, prefetched=False, accessed=False)
        monitor.observe_eviction(record)
        assert monitor.overall_waste_ratio == 0.0

    def test_reset(self):
        monitor = AccessMonitor()
        monitor.observe_eviction(wasted_record())
        monitor.reset()
        assert monitor.total_evictions == 0
        assert monitor.granularity_bytes == monitor.config.initial_prefetch_bytes
