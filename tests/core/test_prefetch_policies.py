"""Tests for the alternative prefetch-policy baselines."""

import pytest

from repro.core.prefetch_policies import (
    NextLinePrefetch,
    NoPrefetch,
    StridePrefetch,
    build_prefetcher,
)
from repro.core.prefetcher import DynamicReadPrefetcher
from repro.sim.request import AccessType, MemoryRequest


def read(pc=0x1000, page=0):
    return MemoryRequest(address=page * 4096, access=AccessType.READ, pc=pc)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoPrefetch),
        ("next_line", NextLinePrefetch),
        ("stride", StridePrefetch),
        ("dynamic", DynamicReadPrefetcher),
    ])
    def test_build(self, name, cls):
        assert isinstance(build_prefetcher(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_prefetcher("oracle")


class TestNoPrefetch:
    def test_never_prefetches(self):
        pf = NoPrefetch()
        decision = pf.on_miss(read())
        assert not decision.prefetch
        assert decision.fetch_bytes == 128
        assert pf.prefetch_rate == 0.0


class TestNextLine:
    def test_always_fetches_window(self):
        pf = NextLinePrefetch(window_bytes=1024)
        decision = pf.on_miss(read())
        assert decision.prefetch
        assert decision.fetch_bytes == 1024

    def test_write_not_prefetched(self):
        pf = NextLinePrefetch()
        decision = pf.on_miss(MemoryRequest(address=0, access=AccessType.WRITE, pc=1))
        assert not decision.prefetch


class TestStride:
    def test_detects_constant_stride(self):
        pf = StridePrefetch(confidence_threshold=2)
        # Train a stride of +1 page at a fixed PC.
        for page in range(5):
            pf.train(read(pc=0x10, page=page))
        decision = pf.on_miss(read(pc=0x10, page=5))
        assert decision.prefetch
        assert decision.reason == "stride_confirmed"

    def test_no_prefetch_without_stride(self):
        pf = StridePrefetch(confidence_threshold=2)
        # Random pages -> no consistent stride.
        for page in [3, 17, 1, 42, 8]:
            pf.train(read(pc=0x10, page=page))
        decision = pf.on_miss(read(pc=0x10, page=99))
        assert not decision.prefetch

    def test_different_pcs_independent(self):
        pf = StridePrefetch(confidence_threshold=2)
        for page in range(5):
            pf.train(read(pc=0x10, page=page))
        # A different PC has no history -> no prefetch.
        assert not pf.on_miss(read(pc=0x20, page=0)).prefetch


class TestOnPlatform:
    @pytest.mark.parametrize("policy", ["none", "next_line", "stride", "dynamic"])
    def test_policy_runs_on_zng(self, policy):
        from dataclasses import replace

        from repro.config import default_config
        from repro.platforms.zng import ZnGPlatform, ZnGVariant
        from repro.workloads.multiapp import build_mix

        config = default_config()
        config = config.copy(prefetch=replace(config.prefetch, policy=policy))
        mix = build_mix("betw", "back", scale=0.1, seed=1,
                        warps_per_sm=4, memory_instructions_per_warp=48)
        result = ZnGPlatform(ZnGVariant.FULL, config).run(mix.combined)
        assert result.ipc > 0
