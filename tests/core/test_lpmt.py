"""Unit tests for the Log Page Mapping Table and programmable row decoder."""

import pytest

from repro.core.lpmt import LogPageMappingTable, ProgrammableRowDecoder


class TestLogPageMappingTable:
    def test_program_then_search(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=8)
        log_page = lpmt.program(pdbn=3, page_index=5)
        assert lpmt.search(3, 5) == log_page

    def test_search_miss(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=8)
        assert lpmt.search(1, 1) is None

    def test_in_order_allocation(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=8)
        first = lpmt.program(0, 0)
        second = lpmt.program(0, 1)
        assert second == first + 1

    def test_rewrite_allocates_new_log_page(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=8)
        first = lpmt.program(0, 0)
        second = lpmt.program(0, 0)  # rewrite the same page
        assert second != first
        assert lpmt.search(0, 0) == second  # latest copy wins

    def test_is_full(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=2)
        lpmt.program(0, 0)
        lpmt.program(0, 1)
        assert lpmt.is_full
        with pytest.raises(RuntimeError):
            lpmt.program(0, 2)

    def test_free_pages(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=4)
        lpmt.program(0, 0)
        assert lpmt.free_pages == 3

    def test_valid_entries(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=8)
        lpmt.program(0, 0)
        lpmt.program(1, 0)
        valid = lpmt.valid_entries()
        assert set(valid) == {(0, 0), (1, 0)}

    def test_reset(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=4)
        lpmt.program(0, 0)
        lpmt.reset(new_plbn=9)
        assert lpmt.plbn == 9
        assert lpmt.next_free_page == 0
        assert len(lpmt) == 0

    def test_search_statistics(self):
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=8)
        lpmt.program(0, 0)
        lpmt.search(0, 0)
        lpmt.search(5, 5)
        assert lpmt.searches == 2
        assert lpmt.hits == 1


class TestProgrammableRowDecoder:
    def test_table_creation_on_demand(self):
        decoder = ProgrammableRowDecoder(plane_id=0, pages_per_block=8)
        table = decoder.table_for(5)
        assert table.plbn == 5
        assert decoder.table_for(5) is table

    def test_program_and_search(self):
        decoder = ProgrammableRowDecoder(plane_id=0, pages_per_block=8)
        decoder.program(plbn=2, pdbn=3, page_index=1)
        assert decoder.search(2, 3, 1) is not None
        assert decoder.search(2, 3, 2) is None

    def test_release(self):
        decoder = ProgrammableRowDecoder(plane_id=0, pages_per_block=8)
        decoder.program(2, 3, 1)
        decoder.release(2)
        assert 2 not in decoder.tables

    def test_cam_search_is_overlapped(self):
        """CAM search cost is modelled as overlapping array access (near-zero)."""
        assert ProgrammableRowDecoder.SEARCH_CYCLES <= 4.0
