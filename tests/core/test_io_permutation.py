"""Unit tests for the SWnet software I/O permutation routers."""

import pytest

from repro.config import ZNANDConfig
from repro.core.io_permutation import SoftwareIOPermutation, SoftwareRouter
from repro.ssd.flash_network import FlashNetwork


def make_permutation():
    config = ZNANDConfig(channels=4, dies_per_package=2, planes_per_die=2)
    return SoftwareIOPermutation(config, FlashNetwork(config, "mesh"))


class TestSoftwareRouter:
    def test_local_write_no_cost(self):
        network = FlashNetwork(ZNANDConfig(), "mesh")
        router = SoftwareRouter(0, network)
        assert router.local_write(0, 4096, now=100.0) == 100.0

    def test_remote_write_two_traversals(self):
        network = FlashNetwork(ZNANDConfig(), "mesh")
        router = SoftwareRouter(0, network)
        before = network.bytes_transferred()
        router.route_remote_write(0, 1, 4096, now=0.0)
        # Copy-in + redirect = two transfers worth of bytes.
        assert network.bytes_transferred() == before + 2 * 4096

    def test_same_channel_single_traversal(self):
        network = FlashNetwork(ZNANDConfig(), "mesh")
        router = SoftwareRouter(0, network)
        before = network.bytes_transferred()
        router.route_remote_write(0, 0, 4096, now=0.0)
        assert network.bytes_transferred() == before + 4096

    def test_trace_records_hops(self):
        network = FlashNetwork(ZNANDConfig(), "mesh")
        router = SoftwareRouter(0, network)
        router.route_remote_write(0, 2, 4096, now=0.0, trace=True)
        stages = [hop.stage for hop in router.hops]
        assert stages == ["copy_in", "redirect"]

    def test_statistics(self):
        network = FlashNetwork(ZNANDConfig(), "mesh")
        router = SoftwareRouter(0, network)
        router.route_remote_write(0, 1, 4096, now=0.0)
        router.route_remote_write(0, 2, 4096, now=0.0)
        assert router.remote_writes == 2
        assert router.bytes_routed == 8192

    def test_reset(self):
        network = FlashNetwork(ZNANDConfig(), "mesh")
        router = SoftwareRouter(0, network)
        router.route_remote_write(0, 1, 4096, now=0.0, trace=True)
        router.reset()
        assert router.remote_writes == 0
        assert router.hops == []


class TestSoftwareIOPermutation:
    def test_router_per_channel(self):
        permutation = make_permutation()
        assert len(permutation.routers) == 4
        assert permutation.router_for(5).router_id == 1

    def test_aggregate_statistics(self):
        permutation = make_permutation()
        permutation.router_for(0).route_remote_write(0, 1, 4096, now=0.0)
        permutation.router_for(1).route_remote_write(1, 2, 4096, now=0.0)
        assert permutation.total_remote_writes == 2
        assert permutation.total_bytes_routed == 8192

    def test_reset(self):
        permutation = make_permutation()
        permutation.router_for(0).route_remote_write(0, 1, 4096, now=0.0)
        permutation.reset()
        assert permutation.total_remote_writes == 0
