"""Unit tests for the register interconnects (SWnet / FCnet / NiF)."""

import pytest

from repro.config import RegisterCacheConfig, ZNANDConfig
from repro.core.register_network import (
    FCnetRegisterNetwork,
    NiFRegisterNetwork,
    SWnetRegisterNetwork,
    build_register_network,
)
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def make_array():
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=4,
    )
    return ZNANDArray(config, network=FlashNetwork(config, "mesh"))


class TestFactory:
    def test_builds_each_type(self):
        array = make_array()
        assert isinstance(
            build_register_network(array, RegisterCacheConfig(interconnect="swnet")),
            SWnetRegisterNetwork,
        )
        assert isinstance(
            build_register_network(array, RegisterCacheConfig(interconnect="fcnet")),
            FCnetRegisterNetwork,
        )
        assert isinstance(
            build_register_network(array, RegisterCacheConfig(interconnect="nif")),
            NiFRegisterNetwork,
        )

    def test_unknown_type(self):
        array = make_array()
        with pytest.raises(ValueError):
            build_register_network(array, RegisterCacheConfig(interconnect="crossbar"))


class TestLocalTransfers:
    def test_local_transfer_no_delay_swnet(self):
        array = make_array()
        net = SWnetRegisterNetwork(array, RegisterCacheConfig())
        assert net.transfer(0, source_plane=0, dest_plane=0, num_bytes=4096, now=100.0) == 100.0

    def test_local_transfer_no_delay_fcnet(self):
        array = make_array()
        net = FCnetRegisterNetwork(array, RegisterCacheConfig())
        assert net.transfer(0, source_plane=0, dest_plane=0, num_bytes=4096, now=50.0) == 50.0

    def test_nif_local_uses_data_path(self):
        array = make_array()
        net = NiFRegisterNetwork(array, RegisterCacheConfig())
        completion = net.transfer(0, source_plane=0, dest_plane=0, num_bytes=4096, now=0.0)
        assert completion > 0.0


class TestRemoteTransfers:
    def test_swnet_remote_uses_flash_network(self):
        array = make_array()
        net = SWnetRegisterNetwork(array, RegisterCacheConfig())
        before = array.network.bytes_transferred()
        net.transfer(0, source_plane=0, dest_plane=1, num_bytes=4096, now=0.0)
        assert array.network.bytes_transferred() > before

    def test_nif_remote_bypasses_flash_network(self):
        array = make_array()
        net = NiFRegisterNetwork(array, RegisterCacheConfig())
        before = array.network.bytes_transferred()
        net.transfer(0, source_plane=0, dest_plane=1, num_bytes=4096, now=0.0)
        # NiF's local network must not touch the flash channels.
        assert array.network.bytes_transferred() == before

    def test_fcnet_remote_is_fast(self):
        array = make_array()
        net = FCnetRegisterNetwork(array, RegisterCacheConfig())
        completion = net.transfer(0, source_plane=0, dest_plane=3, num_bytes=4096, now=0.0)
        assert completion == pytest.approx(FCnetRegisterNetwork.LINK_LATENCY_CYCLES)

    def test_transfer_counts(self):
        array = make_array()
        net = NiFRegisterNetwork(array, RegisterCacheConfig())
        net.transfer(0, 0, 0, 4096, 0.0)
        net.transfer(0, 0, 1, 4096, 0.0)
        assert net.local_transfers == 1
        assert net.remote_transfers == 1


class TestWireCost:
    def test_fcnet_most_expensive(self):
        array = make_array()
        config = RegisterCacheConfig()
        fcnet = FCnetRegisterNetwork(array, config)
        nif = NiFRegisterNetwork(array, config)
        swnet = SWnetRegisterNetwork(array, config)
        assert fcnet.wire_cost_units() > nif.wire_cost_units()
        assert swnet.wire_cost_units() == 0.0

    def test_nif_cheaper_than_fcnet(self):
        array = make_array()
        config = RegisterCacheConfig()
        assert (
            NiFRegisterNetwork(array, config).wire_cost_units()
            < FCnetRegisterNetwork(array, config).wire_cost_units()
        )
