"""Unit tests for the Log Block Mapping Table (shared-memory resident)."""

import pytest

from repro.core.lbmt import LogBlockMappingTable


class TestLBMT:
    def test_assign_groups_data_blocks(self):
        lbmt = LogBlockMappingTable(data_blocks_per_log_block=4)
        lbmt.assign(pdbn=0, plbn=100)
        lbmt.assign(pdbn=1, plbn=100)
        group = lbmt.group_for(0)
        assert group is not None
        assert set(group.data_blocks) == {0, 1}

    def test_group_id_contiguous_ranges(self):
        lbmt = LogBlockMappingTable(data_blocks_per_log_block=4)
        assert lbmt.group_id_of(0) == 0
        assert lbmt.group_id_of(3) == 0
        assert lbmt.group_id_of(4) == 1

    def test_log_block_lookup(self):
        lbmt = LogBlockMappingTable(data_blocks_per_log_block=4)
        lbmt.assign(2, plbn=55)
        assert lbmt.log_block_for(2) == 55
        assert lbmt.log_block_for(100) is None

    def test_group_by_plbn(self):
        lbmt = LogBlockMappingTable()
        lbmt.assign(0, plbn=77)
        group = lbmt.group_by_plbn(77)
        assert group is not None
        assert group.plbn == 77

    def test_replace_log_block(self):
        lbmt = LogBlockMappingTable()
        group = lbmt.assign(0, plbn=10)
        lbmt.replace_log_block(group.group_id, new_plbn=20)
        assert lbmt.log_block_for(0) == 20

    def test_replace_unknown_group(self):
        lbmt = LogBlockMappingTable()
        with pytest.raises(KeyError):
            lbmt.replace_log_block(99, 0)

    def test_size_bytes(self):
        lbmt = LogBlockMappingTable()
        lbmt.assign(0, plbn=1)
        lbmt.assign(8, plbn=2)
        assert lbmt.size_bytes == 2 * LogBlockMappingTable.ENTRY_BYTES

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            LogBlockMappingTable(data_blocks_per_log_block=0)

    def test_groups_listing(self):
        lbmt = LogBlockMappingTable(data_blocks_per_log_block=2)
        lbmt.assign(0, plbn=1)
        lbmt.assign(2, plbn=2)
        assert len(lbmt.groups()) == 2
