"""Unit and property tests for the PC-indexed spatial-locality predictor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PrefetchConfig
from repro.core.predictor import PredictorTable


class TestPredictor:
    def test_repeated_page_raises_counter(self):
        predictor = PredictorTable()
        pc = 0x1000
        for _ in range(20):
            predictor.update(pc, warp_id=0, logical_page=5)
        assert predictor.counter(pc) >= predictor.config.prefetch_threshold

    def test_irregular_access_lowers_counter(self):
        predictor = PredictorTable()
        pc = 0x1000
        for _ in range(20):
            predictor.update(pc, warp_id=0, logical_page=5)
        # Non-sequential jumps (not same page, not next page) lower the counter.
        for page in (100, 3, 77, 12, 999, 1, 555, 8, 321, 40):
            predictor.update(pc, warp_id=0, logical_page=page)
        assert predictor.counter(pc) < predictor.config.prefetch_threshold

    def test_sequential_access_raises_counter(self):
        """Continuous (next-page) access is what the prefetcher targets."""
        predictor = PredictorTable()
        pc = 0x1000
        for page in range(20):
            predictor.update(pc, warp_id=0, logical_page=page)
        assert predictor.counter(pc) >= predictor.config.prefetch_threshold

    def test_counter_saturates(self):
        predictor = PredictorTable()
        pc = 0x2000
        for _ in range(1000):
            predictor.update(pc, warp_id=0, logical_page=5)
        assert predictor.counter(pc) == predictor.max_counter

    def test_counter_floor_is_zero(self):
        predictor = PredictorTable()
        pc = 0x2000
        # Alternating far-apart pages never form a continuous run -> floor at 0.
        for i in range(50):
            predictor.update(pc, warp_id=0, logical_page=(i * 997) % 100000)
        assert predictor.counter(pc) == 0

    def test_should_prefetch_threshold(self):
        config = PrefetchConfig(prefetch_threshold=3)
        predictor = PredictorTable(config)
        pc = 0x3000
        for _ in range(5):
            predictor.update(pc, warp_id=0, logical_page=1)
        assert predictor.should_prefetch(pc)

    def test_unknown_pc_counter_zero(self):
        predictor = PredictorTable()
        assert predictor.counter(0xdead) == 0
        assert not predictor.should_prefetch(0xdead)

    def test_limited_warp_tracking(self):
        config = PrefetchConfig(warps_tracked_per_entry=2)
        predictor = PredictorTable(config)
        pc = 0x4000
        for warp in range(5):
            predictor.update(pc, warp_id=warp, logical_page=warp)
        entry = predictor.entries[predictor._entry_index(pc)]
        assert len(entry.warp_pages) <= 2

    def test_distinct_pcs_independent(self):
        predictor = PredictorTable()
        for _ in range(20):
            predictor.update(0x1000, 0, 1)
        assert predictor.counter(0x2000) == 0

    def test_reset(self):
        predictor = PredictorTable()
        predictor.update(0x1000, 0, 1)
        predictor.reset()
        assert predictor.occupancy == 0
        assert predictor.updates == 0

    @given(
        pages=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_counter_bounded(self, pages):
        predictor = PredictorTable()
        pc = 0x5000
        for page in pages:
            counter = predictor.update(pc, warp_id=0, logical_page=page)
            assert 0 <= counter <= predictor.max_counter

    def test_word_aligned_pcs_spread_across_entries(self):
        """Consecutive word-aligned PCs (the generator spaces loads by 8 bytes)
        must spread across predictor entries, not alias onto one as a plain
        modulo-by-512 would for an 8-byte stride."""
        predictor = PredictorTable(PrefetchConfig(predictor_entries=512))
        indices = {predictor._entry_index(0x1000 + 8 * i) for i in range(16)}
        assert len(indices) >= 12

    def test_hash_avoids_power_of_two_aliasing(self):
        """A stride that is a divisor of the table size would collapse a plain
        modulo to a single entry; the multiplicative hash must not."""
        predictor = PredictorTable(PrefetchConfig(predictor_entries=512))
        # 8-byte words, stride 64 -> 512-byte PC spacing == table size * 1.
        indices = {predictor._entry_index(0x1000 + 512 * i) for i in range(16)}
        assert len(indices) >= 8
