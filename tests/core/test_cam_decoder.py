"""Unit and property tests for the bit-level CAM programmable decoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cam_decoder import CAMRow, ProgrammableDecoderCAM


class TestKeyEncoding:
    def test_encode_length(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8, address_bits=16)
        bits = cam.encode_key(3, 5)
        assert len(bits) == 16
        assert all(b in (0, 1) for b in bits)

    def test_distinct_keys_distinct_encodings(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        assert cam.encode_key(1, 0) != cam.encode_key(0, 1)
        assert cam.encode_key(2, 3) != cam.encode_key(2, 4)


class TestProgramSearch:
    def test_program_then_search(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        page = cam.program(3, 5)
        assert cam.search(3, 5) == page

    def test_search_miss(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        assert cam.search(1, 1) is None

    def test_in_order_allocation(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        first = cam.program(0, 0)
        second = cam.program(0, 1)
        assert second == first + 1

    def test_rewrite_returns_latest(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        cam.program(0, 0)
        latest = cam.program(0, 0)
        assert cam.search(0, 0) == latest

    def test_full_decoder_raises(self):
        cam = ProgrammableDecoderCAM(pages_per_block=2)
        cam.program(0, 0)
        cam.program(0, 1)
        assert cam.is_full
        with pytest.raises(RuntimeError):
            cam.program(0, 2)

    def test_statistics(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        cam.program(0, 0)
        cam.search(0, 0)
        cam.search(9, 9)
        assert cam.programs == 1
        assert cam.searches == 2
        assert cam.matches == 1

    def test_occupancy_and_reset(self):
        cam = ProgrammableDecoderCAM(pages_per_block=8)
        cam.program(0, 0)
        assert cam.occupancy == 1
        cam.reset()
        assert cam.occupancy == 0
        assert cam.search(0, 0) is None


class TestCAMRow:
    def test_program_sets_valid(self):
        row = CAMRow(wordline=0)
        row.program([1, 0, 1], payload=7)
        assert row.valid
        assert row.payload == 7
        assert row.bits == [1, 0, 1]


class TestEquivalenceWithLPMT:
    """The bit-level CAM must behave like the logical LPMT abstraction."""

    def test_matches_lpmt_semantics(self):
        from repro.core.lpmt import LogPageMappingTable

        cam = ProgrammableDecoderCAM(pages_per_block=16)
        lpmt = LogPageMappingTable(plbn=0, pages_per_block=16)
        operations = [(0, 0), (1, 2), (0, 0), (3, 3), (1, 2)]
        for pdbn, page_index in operations:
            cam_page = cam.program(pdbn, page_index)
            lpmt_page = lpmt.program(pdbn, page_index)
            assert cam_page == lpmt_page
        for pdbn, page_index in {(0, 0), (1, 2), (3, 3)}:
            assert cam.search(pdbn, page_index) == lpmt.search(pdbn, page_index)


class TestProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_latest_write_wins(self, ops):
        cam = ProgrammableDecoderCAM(pages_per_block=64)
        last_page = {}
        for pdbn, page_index in ops:
            last_page[(pdbn, page_index)] = cam.program(pdbn, page_index)
        for key, expected in last_page.items():
            assert cam.search(*key) == expected
