"""Unit tests for the helper-thread garbage collector."""

import pytest

from repro.config import FTLConfig, ZNANDConfig
from repro.core.helper_gc import HelperThreadGC
from repro.core.zero_overhead_ftl import ZeroOverheadFTL
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def make_ftl(pages_per_block=4, blocks=32):
    config = ZNANDConfig(
        channels=2, dies_per_package=1, planes_per_die=2,
        blocks_per_plane=blocks, pages_per_block=pages_per_block,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    ftl = ZeroOverheadFTL(array, FTLConfig(data_blocks_per_log_block=4))
    gc = HelperThreadGC(ftl, array)
    ftl.helper_gc = gc
    return ftl, array, gc


class TestHelperGC:
    def test_merge_empty_log_block(self):
        ftl, _, gc = make_ftl()
        entry = ftl.map_virtual_block(0)
        completion = gc.merge_group(entry.plbn, now=0.0)
        assert completion >= HelperThreadGC.LAUNCH_OVERHEAD_CYCLES

    def test_merge_after_writes(self):
        ftl, array, gc = make_ftl(pages_per_block=4)
        entry = ftl.map_virtual_block(0)
        for page in range(4):
            ftl.allocate_write(page, now=0.0)
            array.program_page(ftl.ppn_in_block(entry.plbn, page), now=0.0)
        completion = gc.merge_group(entry.plbn, now=0.0)
        assert completion > 0.0
        assert gc.merges == 1

    def test_merge_allocates_new_log_block(self):
        ftl, array, gc = make_ftl(pages_per_block=4)
        entry = ftl.map_virtual_block(0)
        original_plbn = entry.plbn
        for page in range(4):
            ftl.allocate_write(page, now=0.0)
        gc.merge_group(original_plbn, now=0.0)
        # The virtual block's log block must have changed after the merge.
        assert ftl.dbmt.lookup(0).plbn != original_plbn

    def test_gc_triggered_via_ftl(self):
        ftl, _, gc = make_ftl(pages_per_block=4)
        ftl.map_virtual_block(0)
        for i in range(12):
            ftl.allocate_write(i % 4, now=float(i))
        assert gc.merges >= 1
        assert gc.blocks_erased >= 1
