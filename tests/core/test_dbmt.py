"""Unit tests for the Data Block Mapping Table (MMU-resident, read-only)."""

import pytest

from repro.core.dbmt import DataBlockMappingTable, DBMTEntry


class TestDBMT:
    def test_install_and_lookup(self):
        dbmt = DataBlockMappingTable()
        entry = dbmt.install(vbn=0, lbn=0, pdbn=5, plbn=100)
        assert dbmt.lookup(0) is entry
        assert entry.pdbn == 5
        assert entry.plbn == 100

    def test_lookup_miss(self):
        dbmt = DataBlockMappingTable()
        assert dbmt.lookup(99) is None
        assert dbmt.misses == 1

    def test_entry_size_is_16_bytes(self):
        assert DBMTEntry.ENTRY_BYTES == 16

    def test_capacity_entries(self):
        dbmt = DataBlockMappingTable(capacity_bytes=80 * 1024)
        assert dbmt.capacity_entries == 80 * 1024 // 16

    def test_size_bytes_tracks_entries(self):
        dbmt = DataBlockMappingTable()
        dbmt.install(0, 0, 0, 0)
        dbmt.install(1, 1, 1, 1)
        assert dbmt.size_bytes == 32

    def test_fits_in_mmu_within_budget(self):
        dbmt = DataBlockMappingTable(capacity_bytes=80 * 1024)
        for vbn in range(100):
            dbmt.install(vbn, vbn, vbn, vbn)
        assert dbmt.fits_in_mmu()

    def test_overflow_tracked(self):
        dbmt = DataBlockMappingTable(capacity_bytes=16 * 4)  # only 4 entries
        for vbn in range(6):
            dbmt.install(vbn, vbn, vbn, vbn)
        assert dbmt.overflow_entries == 2
        assert not dbmt.fits_in_mmu()

    def test_update_data_block(self):
        dbmt = DataBlockMappingTable()
        dbmt.install(0, 0, 5, 100)
        dbmt.update_data_block(0, new_pdbn=9)
        assert dbmt.lookup(0).pdbn == 9

    def test_update_log_block(self):
        dbmt = DataBlockMappingTable()
        dbmt.install(0, 0, 5, 100)
        dbmt.update_log_block(0, new_plbn=200)
        assert dbmt.lookup(0).plbn == 200

    def test_update_unknown_raises(self):
        dbmt = DataBlockMappingTable()
        with pytest.raises(KeyError):
            dbmt.update_data_block(5, 0)

    def test_dbmt_fits_80kb_for_realistic_device(self):
        """The paper's key claim: block-granular mapping fits in ~80 KB."""
        # 800 GB device, 2 MB blocks (384 x 4 KB pages ~= 1.5 MB) => ~500k
        # blocks would need 8 MB at 16 B/entry, but only the *hot working set*
        # of blocks is resident; the resident DBMT is bounded at 80 KB / 16 =
        # 5120 entries.
        dbmt = DataBlockMappingTable(capacity_bytes=80 * 1024)
        assert dbmt.capacity_entries == 5120
