"""Unit tests for the dynamic read prefetcher."""

import pytest

from repro.config import PrefetchConfig
from repro.core.prefetcher import DynamicReadPrefetcher
from repro.gpu.cache import EvictionRecord
from repro.sim.request import AccessType, MemoryRequest


def read_request(pc=0x1000, page=0, warp=0):
    return MemoryRequest(address=page * 4096, access=AccessType.READ, pc=pc, warp_id=warp)


class TestPrefetcher:
    def test_no_prefetch_before_training(self):
        prefetcher = DynamicReadPrefetcher()
        decision = prefetcher.on_miss(read_request())
        assert not decision.prefetch
        assert decision.fetch_bytes == prefetcher.line_bytes

    def test_prefetch_after_training(self):
        config = PrefetchConfig(prefetch_threshold=3)
        prefetcher = DynamicReadPrefetcher(config)
        request = read_request(page=5)
        for _ in range(5):
            prefetcher.train(request)
        decision = prefetcher.on_miss(request)
        assert decision.prefetch
        assert decision.fetch_bytes > prefetcher.line_bytes

    def test_write_never_prefetched(self):
        prefetcher = DynamicReadPrefetcher()
        request = MemoryRequest(address=0, access=AccessType.WRITE, pc=0x1000)
        decision = prefetcher.on_miss(request)
        assert not decision.prefetch
        assert decision.reason == "write"

    def test_write_does_not_train(self):
        prefetcher = DynamicReadPrefetcher()
        request = MemoryRequest(address=0, access=AccessType.WRITE, pc=0x1000)
        prefetcher.train(request)
        assert prefetcher.predictor.updates == 0

    def test_eviction_feedback_adjusts_granularity(self):
        config = PrefetchConfig(monitor_window_evictions=8, high_waste_threshold=0.3)
        prefetcher = DynamicReadPrefetcher(config)
        start = prefetcher.current_granularity
        wasted = [
            EvictionRecord(address=i, dirty=False, prefetched=True, accessed=False)
            for i in range(8)
        ]
        prefetcher.observe_evictions(wasted)
        assert prefetcher.current_granularity < start

    def test_prefetch_rate(self):
        config = PrefetchConfig(prefetch_threshold=1)
        prefetcher = DynamicReadPrefetcher(config)
        request = read_request(page=1)
        prefetcher.train(request)
        prefetcher.train(request)
        prefetcher.on_miss(request)                     # prefetch
        prefetcher.on_miss(read_request(pc=0x999))      # demand (untrained)
        assert prefetcher.prefetch_rate == pytest.approx(0.5)

    def test_fetch_bytes_never_exceeds_page(self):
        config = PrefetchConfig(prefetch_threshold=1, initial_prefetch_bytes=8192)
        prefetcher = DynamicReadPrefetcher(config, page_size_bytes=4096)
        request = read_request()
        prefetcher.train(request)
        prefetcher.train(request)
        decision = prefetcher.on_miss(request)
        assert decision.fetch_bytes <= 4096

    def test_reset(self):
        prefetcher = DynamicReadPrefetcher()
        prefetcher.train(read_request())
        prefetcher.reset()
        assert prefetcher.predictor.occupancy == 0
        assert prefetcher.prefetches_issued == 0
