"""Unit tests for the register-cache thrashing checker."""

import pytest

from repro.config import RegisterCacheConfig
from repro.core.thrashing import ThrashingChecker


class TestThrashingChecker:
    def test_no_thrashing_below_threshold(self):
        config = RegisterCacheConfig(thrashing_window=10, thrashing_eviction_ratio=0.5)
        checker = ThrashingChecker(config)
        for _ in range(10):
            state = checker.observe(evicted=False)
        assert not state.thrashing

    def test_thrashing_detected_above_threshold(self):
        config = RegisterCacheConfig(thrashing_window=10, thrashing_eviction_ratio=0.5)
        checker = ThrashingChecker(config)
        for _ in range(10):
            state = checker.observe(evicted=True)
        assert state.thrashing
        assert checker.activations == 1

    def test_deactivation(self):
        config = RegisterCacheConfig(thrashing_window=4, thrashing_eviction_ratio=0.5)
        checker = ThrashingChecker(config)
        for _ in range(4):
            checker.observe(evicted=True)       # thrashing on
        for _ in range(4):
            state = checker.observe(evicted=False)  # thrashing off
        assert not state.thrashing
        assert checker.deactivations == 1

    def test_eviction_ratio(self):
        config = RegisterCacheConfig(thrashing_window=4)
        checker = ThrashingChecker(config)
        checker.observe(evicted=True)
        checker.observe(evicted=False)
        checker.observe(evicted=True)
        state = checker.observe(evicted=False)
        assert state.eviction_ratio == pytest.approx(0.5)

    def test_window_resets(self):
        config = RegisterCacheConfig(thrashing_window=2)
        checker = ThrashingChecker(config)
        checker.observe(evicted=True)
        checker.observe(evicted=True)
        # A new window begins.
        assert checker.window_accesses == 0

    def test_reset(self):
        checker = ThrashingChecker(RegisterCacheConfig(thrashing_window=2))
        checker.observe(evicted=True)
        checker.reset()
        assert checker.window_accesses == 0
        assert not checker.thrashing
