"""Unit and property tests for the flash-register write cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RegisterCacheConfig, ZNANDConfig
from repro.core.register_cache import FlashRegisterCache
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def make_cache(scope="package", registers_per_plane=8):
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=4,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    rc_config = RegisterCacheConfig(registers_per_plane=registers_per_plane)
    return FlashRegisterCache(array, rc_config, scope=scope)


def noop_program(virtual_page, now):
    return now + 1000.0  # stand-in for a 100 us flash program


class TestWriteAbsorption:
    def test_first_write_is_miss(self):
        cache = make_cache()
        outcome = cache.write(0, target_plane=0, write_bytes=128, now=0.0, program_fn=noop_program)
        assert not outcome.register_hit

    def test_repeated_write_is_hit(self):
        cache = make_cache()
        cache.write(0, 0, 128, 0.0, noop_program)
        outcome = cache.write(0, 0, 128, 10.0, noop_program)
        assert outcome.register_hit
        assert cache.write_hits == 1

    def test_merge_accumulates_dirty_bytes(self):
        cache = make_cache()
        cache.write(0, 0, 128, 0.0, noop_program)
        cache.write(0, 0, 128, 1.0, noop_program)
        group = cache.group_of_plane(0)
        entry = cache._packages[group][0]
        assert entry.dirty_bytes == 256
        assert entry.writes_merged == 2


class TestEviction:
    def test_eviction_programs_flash(self):
        cache = make_cache(scope="plane", registers_per_plane=2)
        programmed = []

        def program(page, now):
            programmed.append(page)
            return now + 1000.0

        # Three distinct pages to the same plane overflow its 2 registers.
        plane = 0
        cache.write(0, plane, 128, 0.0, program)
        cache.write(cache.planes_per_package, plane, 128, 0.0, program)  # same plane group in plane scope
        # In plane scope, group == plane; use pages that map to the same plane.
        cache.write(1000, plane, 128, 0.0, program)
        assert cache.evictions >= 1

    def test_package_scope_larger_capacity(self):
        package_cache = make_cache(scope="package", registers_per_plane=8)
        plane_cache = make_cache(scope="plane", registers_per_plane=8)
        assert package_cache._group_capacity > plane_cache._group_capacity


class TestPlaneScope:
    def test_prepare_for_read_drains_plane(self):
        cache = make_cache(scope="plane", registers_per_plane=2)
        programmed = []

        def program(page, now):
            programmed.append(page)
            return now + 1000.0

        cache.write(5, target_plane=3, write_bytes=128, now=0.0, program_fn=program)
        assert cache.holds(cache.group_of_plane(3), 5)
        cache.prepare_plane_for_read(3, now=100.0, program_fn=program)
        assert not cache.holds(cache.group_of_plane(3), 5)
        assert cache.forced_read_flushes == 1

    def test_package_scope_read_not_blocked(self):
        cache = make_cache(scope="package")
        completion = cache.prepare_plane_for_read(0, now=100.0, program_fn=noop_program)
        assert completion == 100.0


class TestThrashingSpill:
    def test_spill_to_l2_when_thrashing(self):
        config = RegisterCacheConfig(
            registers_per_plane=1, thrashing_window=2, thrashing_eviction_ratio=0.1,
        )
        znand = ZNANDConfig(
            channels=2, dies_per_package=1, planes_per_die=1,
            blocks_per_plane=8, pages_per_block=4,
        )
        array = ZNANDArray(znand, network=FlashNetwork(znand, "mesh"))
        cache = FlashRegisterCache(array, config, scope="package")
        spilled = []

        def spill(page, now):
            spilled.append(page)
            return now + 50.0

        # Force evictions until thrashing is detected, then spills begin.
        for page in range(20):
            cache.write(page, target_plane=0, write_bytes=128, now=float(page),
                        program_fn=noop_program, l2_spill_fn=spill)
        assert cache.l2_spills >= 1


class TestFlush:
    def test_flush_programs_all_registers(self):
        cache = make_cache()
        programmed = []

        def program(page, now):
            programmed.append(page)
            return now + 1000.0

        for page in range(5):
            cache.write(page, target_plane=0, write_bytes=128, now=0.0, program_fn=program)
        cache.flush(now=0.0, program_fn=program)
        assert len(programmed) == 5


class TestProperties:
    @given(
        pages=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60)
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, pages):
        cache = make_cache(scope="package", registers_per_plane=8)
        for page in pages:
            cache.write(page, target_plane=0, write_bytes=128, now=0.0, program_fn=noop_program)
        group = cache.group_of_plane(0)
        assert cache.occupancy(group) <= cache._group_capacity

    @given(
        pages=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=80)
    )
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_writes(self, pages):
        cache = make_cache()
        for page in pages:
            cache.write(page, target_plane=0, write_bytes=128, now=0.0, program_fn=noop_program)
        assert cache.write_hits + cache.write_misses == len(pages)
