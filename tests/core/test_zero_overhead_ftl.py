"""Unit and property tests for the zero-overhead FTL."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FTLConfig, ZNANDConfig
from repro.core.helper_gc import HelperThreadGC
from repro.core.zero_overhead_ftl import ZeroOverheadFTL
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def make_ftl(pages_per_block=8, blocks=32):
    config = ZNANDConfig(
        channels=2, dies_per_package=1, planes_per_die=2,
        blocks_per_plane=blocks, pages_per_block=pages_per_block,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    ftl = ZeroOverheadFTL(array, FTLConfig(data_blocks_per_log_block=4))
    ftl.helper_gc = HelperThreadGC(ftl, array)
    return ftl, array


class TestMappingSetup:
    def test_map_virtual_block(self):
        ftl, _ = make_ftl()
        entry = ftl.map_virtual_block(0)
        assert entry.vbn == 0
        assert ftl.dbmt.lookup(0) is entry

    def test_idempotent_mapping(self):
        ftl, _ = make_ftl()
        first = ftl.map_virtual_block(3)
        second = ftl.map_virtual_block(3)
        assert first is second

    def test_setup_mapping_covers_footprint(self):
        ftl, _ = make_ftl(pages_per_block=8)
        blocks = ftl.setup_mapping(total_virtual_pages=40)
        assert blocks == 5  # ceil(40 / 8)
        assert len(ftl.dbmt) == 5

    def test_data_and_log_blocks_disjoint(self):
        ftl, _ = make_ftl()
        entry = ftl.map_virtual_block(0)
        assert entry.pdbn != entry.plbn


class TestReadTranslation:
    def test_read_of_clean_page_uses_data_block(self):
        ftl, _ = make_ftl()
        ftl.map_virtual_block(0)
        translation = ftl.translate_read(0)
        assert not translation.from_log_block

    def test_read_after_write_uses_log_block(self):
        ftl, _ = make_ftl()
        ftl.map_virtual_block(0)
        ftl.allocate_write(0, now=0.0)
        translation = ftl.translate_read(0)
        assert translation.from_log_block

    def test_page_index_preserved(self):
        ftl, _ = make_ftl(pages_per_block=8)
        ftl.map_virtual_block(0)
        translation = ftl.translate_read(5)
        assert translation.page_index == 5

    def test_translate_maps_on_demand(self):
        ftl, _ = make_ftl()
        # No explicit mapping: the FTL maps the block lazily.
        translation = ftl.translate_read(10)
        assert translation.ppn >= 0


class TestWriteAllocation:
    def test_write_allocates_log_page(self):
        ftl, _ = make_ftl()
        ftl.map_virtual_block(0)
        allocation = ftl.allocate_write(0, now=0.0)
        assert allocation.plbn == ftl.dbmt.lookup(0).plbn

    def test_rewrites_allocate_distinct_log_pages(self):
        ftl, _ = make_ftl()
        ftl.map_virtual_block(0)
        first = ftl.allocate_write(0, now=0.0)
        second = ftl.allocate_write(0, now=10.0)
        assert first.ppn != second.ppn

    def test_log_block_fill_triggers_gc(self):
        ftl, _ = make_ftl(pages_per_block=4)
        ftl.map_virtual_block(0)
        gc_seen = False
        for i in range(12):
            allocation = ftl.allocate_write(i % 4, now=float(i))
            gc_seen = gc_seen or allocation.gc_performed
        assert gc_seen
        assert ftl.gc_merges >= 1


class TestDBMTSize:
    def test_block_granular_table_is_small(self):
        ftl, _ = make_ftl()
        ftl.setup_mapping(100)
        # Far smaller than a page-granular table would be.
        assert ftl.dbmt_size_bytes < ftl.dbmt.capacity_bytes


class TestProperties:
    @given(
        writes=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=30)
    )
    @settings(max_examples=30, deadline=None)
    def test_read_sees_latest_write(self, writes):
        # Large log blocks so the small working set never triggers a GC merge;
        # every written page then resolves through its log block.
        ftl, _ = make_ftl(pages_per_block=64, blocks=64)
        ftl.setup_mapping(16)
        time = 0.0
        for page in writes:
            allocation = ftl.allocate_write(page, now=time)
            time = allocation.ready_cycle + 1
        assert ftl.gc_merges == 0
        for page in set(writes):
            translation = ftl.translate_read(page)
            assert translation.from_log_block

    @given(pages=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_clean_reads_never_from_log(self, pages):
        ftl, _ = make_ftl(pages_per_block=8, blocks=64)
        ftl.setup_mapping(32)
        for page in pages:
            translation = ftl.translate_read(page)
            assert not translation.from_log_block
