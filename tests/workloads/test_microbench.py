"""Tests for the micro-workload generators."""

import pytest

from repro.workloads import microbench


class TestStreaming:
    def test_all_reads(self):
        trace = microbench.streaming(num_warps=4, accesses_per_warp=8)
        assert sum(trace.page_write_counts.values()) == 0
        assert trace.total_memory_instructions == 4 * 8

    def test_fully_coalesced(self):
        trace = microbench.streaming(num_warps=2, accesses_per_warp=4)
        for warp in trace.warps:
            for instr in warp.instructions:
                assert len(instr.addresses) == 32

    def test_each_line_read_once(self):
        # Streaming touches each 128 B line exactly once; per-page reuse just
        # reflects how many distinct lines of a 4 KB page the warp streamed.
        trace = microbench.streaming(num_warps=8, accesses_per_warp=8)
        total_reads = sum(trace.page_read_counts.values())
        assert total_reads == 8 * 8
        # No page is read more than the 32 lines it contains.
        assert max(trace.page_read_counts.values()) <= 32


class TestPointerChase:
    def test_single_thread_accesses(self):
        trace = microbench.pointer_chase(num_warps=4, chain_length=8, seed=1)
        for warp in trace.warps:
            for instr in warp.instructions:
                assert len(instr.addresses) == 1

    def test_deterministic(self):
        a = microbench.pointer_chase(num_warps=4, chain_length=8, seed=7)
        b = microbench.pointer_chase(num_warps=4, chain_length=8, seed=7)
        assert a.page_read_counts == b.page_read_counts


class TestStencil:
    def test_high_reuse(self):
        trace = microbench.stencil(num_warps=4, iterations=16)
        # Each page is read many times (3 lines x iterations).
        assert trace.mean_read_reaccess > 5.0

    def test_all_reads(self):
        trace = microbench.stencil(num_warps=4, iterations=4)
        assert sum(trace.page_write_counts.values()) == 0


class TestHammer:
    def test_all_writes(self):
        trace = microbench.hammer(num_warps=4, writes_per_warp=16, hot_pages=4)
        assert sum(trace.page_read_counts.values()) == 0

    def test_high_write_redundancy(self):
        trace = microbench.hammer(num_warps=8, writes_per_warp=16, hot_pages=4)
        assert trace.mean_write_redundancy > 10.0

    def test_small_footprint(self):
        trace = microbench.hammer(num_warps=8, writes_per_warp=16, hot_pages=4)
        assert trace.footprint_pages == 4


class TestOnPlatforms:
    def test_streaming_runs_on_zng(self):
        from repro.platforms import build_platform

        trace = microbench.streaming(num_warps=16, accesses_per_warp=16)
        result = build_platform("ZnG").run(trace)
        assert result.ipc > 0

    def test_hammer_exercises_register_cache(self):
        from repro.platforms.zng import ZnGPlatform, ZnGVariant

        trace = microbench.hammer(num_warps=16, writes_per_warp=32, hot_pages=4)
        platform = ZnGPlatform(ZnGVariant.WROPT)
        platform.run(trace)
        assert platform.register_cache.write_hits > 0
