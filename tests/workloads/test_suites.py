"""Tests that the workload catalogue matches the paper's Table II."""

import pytest

from repro.workloads.suites import (
    ALL_WORKLOADS,
    GRAPH_WORKLOADS,
    MULTI_APP_MIXES,
    SCIENTIFIC_WORKLOADS,
    mix_name,
    workload_by_name,
)

# The read ratios reported in Table II of the paper.
TABLE_II_READ_RATIOS = {
    "betw": 0.98, "bfs1": 0.95, "bfs2": 0.99, "bfs3": 0.88, "bfs4": 0.97,
    "bfs5": 0.99, "bfs6": 0.97, "gc1": 0.98, "gc2": 0.99, "sssp3": 0.98,
    "deg": 1.0, "pr": 0.99, "back": 0.57, "gaus": 0.66, "FDT": 0.73, "gram": 0.75,
}

TABLE_II_KERNELS = {
    "betw": 11, "bfs1": 7, "bfs2": 9, "bfs3": 10, "bfs4": 12, "bfs5": 6,
    "bfs6": 7, "gc1": 8, "gc2": 10, "sssp3": 8, "deg": 1, "pr": 53,
    "back": 1, "gaus": 3, "FDT": 1, "gram": 3,
}


class TestCatalogue:
    def test_all_sixteen_workloads(self):
        assert len(ALL_WORKLOADS) == 16

    def test_graph_and_scientific_disjoint(self):
        assert set(GRAPH_WORKLOADS) & set(SCIENTIFIC_WORKLOADS) == set()

    @pytest.mark.parametrize("name,ratio", TABLE_II_READ_RATIOS.items())
    def test_read_ratios_match_table2(self, name, ratio):
        assert workload_by_name(name).read_ratio == pytest.approx(ratio)

    @pytest.mark.parametrize("name,kernels", TABLE_II_KERNELS.items())
    def test_kernel_counts_match_table2(self, name, kernels):
        assert workload_by_name(name).kernels == kernels

    def test_graph_workloads_read_intensive(self):
        for name, spec in GRAPH_WORKLOADS.items():
            assert spec.read_ratio >= 0.88, name

    def test_scientific_workloads_write_heavier(self):
        for spec in SCIENTIFIC_WORKLOADS.values():
            assert spec.read_ratio <= 0.75

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("nonexistent")


class TestMixes:
    def test_twelve_mixes(self):
        assert len(MULTI_APP_MIXES) == 12

    def test_mixes_pair_read_and_write_intensive(self):
        for read_app, write_app in MULTI_APP_MIXES:
            assert read_app in GRAPH_WORKLOADS
            assert write_app in SCIENTIFIC_WORKLOADS

    def test_mix_name(self):
        assert mix_name("betw", "back") == "betw-back"


class TestSpecProperties:
    def test_write_ratio_complements_read(self):
        spec = workload_by_name("back")
        assert spec.read_ratio + spec.write_ratio == pytest.approx(1.0)

    def test_is_read_intensive(self):
        assert workload_by_name("deg").is_read_intensive
        assert not workload_by_name("back").is_read_intensive


class TestTokenDelegation:
    """suites-level token helpers delegate to the registry grammar."""

    def test_parse_workload_token_handles_dashed_family_names(self):
        # Regression: the historical split("-") parser broke on any family
        # name containing a dash.
        from repro.workloads.suites import parse_workload_token

        assert parse_workload_token("kv-lookup") == ("kv-lookup", None)
        assert parse_workload_token("kv-lookup-back") == ("kv-lookup", "back")
        assert parse_workload_token("betw-back") == ("betw", "back")

    def test_resolve_workload_tokens_expands_suites(self):
        from repro.workloads.suites import resolve_workload_tokens

        assert resolve_workload_tokens(["graph"]) == sorted(GRAPH_WORKLOADS)
        assert "kv-lookup" in resolve_workload_tokens(["scenarios"])

    def test_workload_by_name_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean betw"):
            workload_by_name("betww")
