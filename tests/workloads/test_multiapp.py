"""Tests for multi-application co-run construction."""

import pytest

from repro.workloads.multiapp import build_all_mixes, build_mix
from repro.workloads.suites import MULTI_APP_MIXES


class TestBuildMix:
    def test_combined_has_both_apps(self):
        mix = build_mix("betw", "back", scale=0.1, seed=1)
        assert len(mix.combined.warps) == len(mix.first.warps) + len(mix.second.warps)

    def test_disjoint_address_ranges(self):
        mix = build_mix("betw", "back", scale=0.1, seed=1)
        first_pages = set(mix.first.page_read_counts) | set(mix.first.page_write_counts)
        second_pages = set(mix.second.page_read_counts) | set(mix.second.page_write_counts)
        assert first_pages & second_pages == set()

    def test_mix_name(self):
        mix = build_mix("gc1", "FDT", scale=0.1, seed=1)
        assert mix.name == "gc1-FDT"

    def test_combined_footprint(self):
        mix = build_mix("betw", "back", scale=0.1, seed=1)
        assert mix.total_footprint_pages == mix.first.footprint_pages + mix.second.footprint_pages

    def test_specs_accessor(self):
        mix = build_mix("betw", "back", scale=0.1, seed=1)
        first_spec, second_spec = mix.specs
        assert first_spec.name == "betw"
        assert second_spec.name == "back"


class TestBuildAllMixes:
    def test_default_builds_twelve(self):
        mixes = build_all_mixes(scale=0.05, seed=1)
        assert len(mixes) == 12

    def test_subset(self):
        mixes = build_all_mixes(scale=0.05, seed=1, mixes=[("betw", "back")])
        assert set(mixes) == {"betw-back"}

    def test_all_paper_mixes_build(self):
        mixes = build_all_mixes(scale=0.03, seed=1)
        for read_app, write_app in MULTI_APP_MIXES:
            assert f"{read_app}-{write_app}" in mixes
