"""Tests for the workload-family registry (repro.workloads.registry)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import registry
from repro.workloads.registry import (
    PARAMETRIC_FAMILIES,
    WORKLOAD_FAMILIES,
    TraceKnobs,
    WorkloadFamily,
    build_trace,
    canonicalize_token,
    family_by_name,
    family_param,
    parse_workload_token,
    register_family,
    resolve_workload,
    resolve_workload_tokens,
    workload_fingerprint,
)
from repro.workloads.suites import ALL_WORKLOADS, MULTI_APP_MIXES, mix_name

TINY = TraceKnobs(scale=0.05, seed=7, num_sms=4, warps_per_sm=2,
                  memory_instructions_per_warp=32)


class TestRegistryContents:
    def test_every_table2_app_is_a_family(self):
        for name in ALL_WORKLOADS:
            assert name in WORKLOAD_FAMILIES

    def test_four_parametric_scenario_families(self):
        names = {family.name for family in PARAMETRIC_FAMILIES}
        assert names == {"kv-lookup", "embedding-inference",
                         "stream-join", "multi-tenant"}

    def test_every_family_param_documented(self):
        for family in WORKLOAD_FAMILIES.values():
            for param in family.params:
                assert param.unit, f"{family.name}:{param.name} lacks a unit"
                assert param.doc, f"{family.name}:{param.name} lacks a doc"

    def test_every_registered_default_instance_validates_and_builds(self):
        # The satellite property: every family's default parameters must
        # produce a valid WorkloadSpec (no nonsense values sneak in).
        for name, family in WORKLOAD_FAMILIES.items():
            trace = family.builder(family.defaults(), TINY)
            assert trace.warps, name
            assert trace.total_memory_instructions > 0, name

    def test_register_family_rejects_duplicates_and_reserved_names(self):
        family = WORKLOAD_FAMILIES["betw"]
        with pytest.raises(ValueError, match="already registered"):
            register_family(family)
        for bad in ("a:b", "a=b", "a,b", "mixes"):
            broken = WorkloadFamily(
                name=bad, suite="x", description="d", params=(),
                builder=family.builder)
            with pytest.raises(ValueError):
                register_family(broken)

    def test_family_by_name_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean kv-lookup"):
            family_by_name("kv-lokup")

    def test_unknown_param_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean zipf_alpha"):
            WORKLOAD_FAMILIES["betw"].resolve_params({"zipf": 1.0})


class TestTokenParsing:
    def test_plain_and_mix_tokens_unchanged(self):
        assert parse_workload_token("betw") == ("betw", None)
        assert parse_workload_token("betw-back") == ("betw", "back")

    def test_dashed_family_names_parse_as_single(self):
        # Regression: naive split("-") would break every dashed family name.
        for name in ("kv-lookup", "embedding-inference", "stream-join",
                     "multi-tenant"):
            assert parse_workload_token(name) == (name, None)

    def test_dashed_family_in_a_mix_longest_match(self):
        assert parse_workload_token("kv-lookup-back") == ("kv-lookup", "back")
        assert parse_workload_token("stream-join-gaus") == ("stream-join", "gaus")
        assert parse_workload_token("betw-multi-tenant") == ("betw", "multi-tenant")

    def test_parameterised_token(self):
        assert parse_workload_token("kv-lookup:zipf=1.1") == (
            "kv-lookup:zipf=1.1", None)

    def test_unknown_token_fails_with_hint(self):
        with pytest.raises(KeyError, match="did you mean"):
            parse_workload_token("strem-join")

    def test_malformed_param_suffix(self):
        with pytest.raises(ValueError, match="expected name=value"):
            parse_workload_token("kv-lookup:zipf")
        with pytest.raises(ValueError):
            parse_workload_token("kv-lookup:")

    def test_out_of_range_param_rejected(self):
        with pytest.raises(ValueError, match="must be <="):
            parse_workload_token("kv-lookup:get_ratio=1.5")

    def test_canonicalisation_sorts_and_drops_defaults(self):
        assert canonicalize_token("kv-lookup:zipf=0.99") == "kv-lookup"
        assert canonicalize_token(
            "kv-lookup:zipf=1.1,get_ratio=0.95") == "kv-lookup:zipf=1.1"
        assert canonicalize_token(
            "kv-lookup:zipf=1.1,get_ratio=0.9") == (
                "kv-lookup:get_ratio=0.9,zipf=1.1")

    def test_coerced_values_canonicalise_identically(self):
        assert (canonicalize_token("kv-lookup:zipf=1.10")
                == canonicalize_token("kv-lookup:zipf=1.1"))


class TestTokenResolution:
    def test_group_tokens(self):
        assert resolve_workload_tokens(["mixes"]) == [
            mix_name(r, w) for r, w in MULTI_APP_MIXES]
        assert resolve_workload_tokens(["scenarios"]) == [
            "kv-lookup", "embedding-inference", "stream-join", "multi-tenant"]

    def test_order_preserving_dedupe(self):
        tokens = resolve_workload_tokens(
            ["kv-lookup", "kv-lookup:zipf=0.99", "betw"])
        assert tokens == ["kv-lookup", "betw"]

    def test_typo_fails_before_any_cell(self):
        with pytest.raises(KeyError, match="did you mean"):
            resolve_workload_tokens(["betw-back", "kv-lokup"])


class TestFingerprints:
    def test_param_change_changes_fingerprint(self):
        assert (workload_fingerprint("kv-lookup")
                != workload_fingerprint("kv-lookup:zipf=1.1"))

    def test_equal_resolutions_share_a_fingerprint(self):
        assert (workload_fingerprint("kv-lookup")
                == workload_fingerprint("kv-lookup:zipf=0.99"))

    def test_mix_fingerprint_depends_on_both_halves(self):
        base = workload_fingerprint("betw-back")
        assert base != workload_fingerprint("betw-gaus")
        assert base != workload_fingerprint("bfs1-back")

    @settings(max_examples=25, deadline=None)
    @given(zipf=st.floats(min_value=0.0, max_value=4.0,
                          allow_nan=False, allow_infinity=False),
           ratio=st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False, allow_infinity=False))
    def test_fingerprint_injective_over_params(self, zipf, ratio):
        # No cache aliasing: distinct resolved parameter mappings must never
        # share a fingerprint; identical ones must.
        token = f"kv-lookup:zipf={zipf},get_ratio={ratio}"
        resolved = resolve_workload(token)
        default = resolve_workload("kv-lookup")
        if resolved.params == default.params:
            assert resolved.fingerprint() == default.fingerprint()
        else:
            assert resolved.fingerprint() != default.fingerprint()


class TestBuildTrace:
    def test_catalogue_builds_are_bit_identical_to_the_generator(self):
        from repro.workloads.generators import generate_workload
        from repro.workloads.io import trace_to_dict
        from repro.workloads.suites import workload_by_name

        direct = generate_workload(
            workload_by_name("betw"), scale=TINY.scale, seed=TINY.seed,
            num_sms=TINY.num_sms, warps_per_sm=TINY.warps_per_sm,
            memory_instructions_per_warp=TINY.memory_instructions_per_warp)
        via_registry = build_trace("betw", TINY)
        assert trace_to_dict(via_registry) == trace_to_dict(direct)

    def test_kv_lookup_tracks_get_ratio(self):
        trace = build_trace("kv-lookup:get_ratio=0.5",
                            TraceKnobs(scale=0.3, seed=3, warps_per_sm=4))
        assert 0.35 <= trace.measured_read_ratio <= 0.65

    def test_embedding_inference_is_read_only_gathers(self):
        trace = build_trace("embedding-inference", TINY)
        assert trace.measured_read_ratio == 1.0
        assert not trace.page_write_counts

    def test_multi_tenant_behaviour_changes_over_the_trace(self):
        # The defining property of the phased family: the read/write mix of
        # the first half of each warp differs from the second half.
        trace = build_trace(
            "multi-tenant:phases=2,read_ratio_hot=1.0,read_ratio_cold=0.0",
            TraceKnobs(scale=0.5, seed=3, warps_per_sm=2,
                       memory_instructions_per_warp=64))
        for warp in trace.warps:
            half = len(warp.instructions) // 2
            first = [i for i in warp.instructions[:half] if i.is_memory]
            second = [i for i in warp.instructions[half:] if i.is_memory]
            assert all(i.access.is_read for i in first)
            assert all(i.access.is_write for i in second)

    def test_phase_count_changes_the_trace(self):
        from repro.workloads.io import trace_to_dict

        two = build_trace("multi-tenant:phases=2", TINY)
        four = build_trace("multi-tenant:phases=4", TINY)
        assert trace_to_dict(two) != trace_to_dict(four)

    def test_stream_join_alternates_scan_and_probe(self):
        seq = build_trace("stream-join:phases=1", TINY)
        alt = build_trace("stream-join:phases=4", TINY)
        # Phase 0 is the scan profile; adding probe phases must reduce the
        # measured sequentiality.
        assert seq.spec.sequential_fraction > alt.spec.sequential_fraction

    def test_deterministic_for_fixed_seed(self):
        from repro.workloads.io import trace_to_dict

        assert (trace_to_dict(build_trace("stream-join", TINY))
                == trace_to_dict(build_trace("stream-join", TINY)))

    def test_high_zipf_alpha_skews_toward_hot_pages(self):
        # Regression for the alpha >= 1 regime: the old inverse-CDF shortcut
        # collapsed every draw onto the least popular page.
        knobs = TraceKnobs(scale=0.5, seed=11, warps_per_sm=4,
                           memory_instructions_per_warp=64)
        skewed = build_trace("kv-lookup:zipf=1.5", knobs)
        uniform = build_trace("kv-lookup:zipf=0.0", knobs)
        top = max(skewed.page_read_counts.values())
        assert top > max(uniform.page_read_counts.values())


class TestSweepIntegration:
    def test_parametric_workloads_sweep_cached_and_sharded(self, tmp_path):
        from repro.runner import SweepRunner, SweepSpec

        spec = SweepSpec.create(
            platforms=["ZnG-base", "ZnG"],
            workloads=["kv-lookup:zipf=1.1", "multi-tenant:phases=2"],
            scale=0.05, warps_per_sm=2)
        runner = SweepRunner(workers=1, cache=tmp_path)
        serial = runner.run(spec)
        assert len(serial) == 4 and serial.cache_hits == 0
        cached = runner.run(spec)
        assert cached.cache_hits == 4
        assert serial.stats_dicts() == cached.stats_dicts()
        # Shards of the grid union back to the full spec, exactly.
        shard_cells = [cell.cache_key()
                       for index in range(2)
                       for cell in spec.shard(index, 2).cells()]
        assert sorted(shard_cells) == sorted(
            cell.cache_key() for cell in spec.cells())

    def test_mix_with_parametric_half_runs(self):
        from repro.runner import SweepSpec, run_sweep

        result = run_sweep(SweepSpec.create(
            platforms=["ZnG"], workloads=["kv-lookup-back"],
            scale=0.05, warps_per_sm=2))
        assert result.runs[0].result.cycles > 0


class TestPhasedBudgetSplit:
    def test_phases_beyond_the_budget_are_skipped_not_doubled(self):
        # Review regression: phases > memory budget used to give every phase
        # max(1, ...) instructions, doubling the declared budget.
        knobs = TraceKnobs(scale=1.0, seed=5, num_sms=2, warps_per_sm=2,
                           memory_instructions_per_warp=16)
        sixteen = build_trace("multi-tenant:phases=16", knobs)
        thirty_two = build_trace("multi-tenant:phases=32", knobs)
        assert (thirty_two.total_memory_instructions
                == sixteen.total_memory_instructions)

    def test_non_dividing_split_keeps_the_declared_total(self):
        # 3 phases over 30 insts: 10+10+10, not 3 * (30 // 3 rounded down
        # elsewhere); remainder cases spread over the leading phases.
        knobs = TraceKnobs(scale=1.0, seed=5, num_sms=2, warps_per_sm=1,
                           memory_instructions_per_warp=31)
        trace = build_trace("stream-join:phases=3", knobs)
        per_warp = trace.total_memory_instructions // len(trace.warps)
        assert per_warp == 31
