"""Tests for repro-trace-v1 record/replay (repro.workloads.tracefile)."""

import json

import pytest

from repro.runner import SweepSpec, run_sweep
from repro.runner.spec import cell_seed
from repro.workloads.io import trace_to_dict
from repro.workloads.registry import TraceKnobs, build_trace
from repro.workloads.tracefile import (
    TraceFileError,
    read_trace_file,
    record_trace,
    regenerate_from_meta,
    trace_file_fingerprint,
    write_trace_file,
)

KNOBS = dict(scale=0.05, seed=3, num_sms=4, warps_per_sm=2,
             memory_instructions_per_warp=32)


class TestRoundTrip:
    def test_record_then_read_is_bit_identical(self, tmp_path):
        path = tmp_path / "kv.trace.json"
        recorded = record_trace("kv-lookup:zipf=1.1", path, **KNOBS)
        loaded = read_trace_file(path)
        assert loaded.workload == "kv-lookup:zipf=1.1"
        assert trace_to_dict(loaded.trace) == trace_to_dict(recorded.trace)
        assert loaded.content_hash == recorded.content_hash

    def test_segments_survive_the_round_trip(self, tmp_path):
        path = tmp_path / "betw.trace.json"
        recorded = record_trace("betw", path, **KNOBS)
        loaded = read_trace_file(path)
        originals = [i.segments for w in recorded.trace.warps
                     for i in w.instructions]
        replayed = [i.segments for w in loaded.trace.warps
                    for i in w.instructions]
        assert any(s is not None for s in originals)
        assert replayed == originals

    def test_mix_tokens_record_the_combined_trace(self, tmp_path):
        path = tmp_path / "mix.trace.json"
        recorded = record_trace("betw-back", path, **KNOBS)
        assert recorded.workload == "betw-back"
        assert read_trace_file(path).trace.total_memory_instructions > 0

    def test_regenerate_from_meta_matches(self, tmp_path):
        path = tmp_path / "sj.trace.json"
        record_trace("stream-join:phases=4", path, **KNOBS)
        loaded = read_trace_file(path)
        assert (trace_to_dict(regenerate_from_meta(loaded))
                == trace_to_dict(loaded.trace))


class TestVerification:
    def test_corrupted_payload_fails_hash_check(self, tmp_path):
        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup", path, **KNOBS)
        payload = json.loads(path.read_text())
        payload["trace"]["warps"][0]["instructions"][0]["pc"] += 8
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceFileError, match="content-hash verification"):
            read_trace_file(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro-trace-v0"}))
        with pytest.raises(TraceFileError, match="trace schema"):
            read_trace_file(path)

    def test_non_trace_json_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TraceFileError, match="not a trace file"):
            read_trace_file(path)

    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceFileError, match="cannot read"):
            read_trace_file(tmp_path / "absent.json")

    def test_file_fingerprint_tracks_bytes(self, tmp_path):
        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup", path, **KNOBS)
        before = trace_file_fingerprint(path)
        assert trace_file_fingerprint(path) == before  # memo hit
        path.write_text(path.read_text() + " ")
        assert trace_file_fingerprint(path) != before


class TestSweepReplay:
    def test_replayed_sweep_is_bit_identical_to_generating_sweep(self, tmp_path):
        # The headline acceptance property: record a trace with the sweep's
        # own seed derivation, then sweep the file — every platform's result
        # must equal the generating run's, bit for bit.
        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup:zipf=1.1", path, scale=0.05, seed=1,
                     warps_per_sm=2)
        generating = run_sweep(SweepSpec.create(
            platforms=["ZnG-base", "ZnG"],
            workloads=["kv-lookup:zipf=1.1"],
            scale=0.05, seed=1, warps_per_sm=2))
        replayed = run_sweep(SweepSpec.create(
            platforms=["ZnG-base", "ZnG"],
            workloads=[f"trace:{path}"],
            scale=0.05, seed=1, warps_per_sm=2))
        for original, replay in zip(generating, replayed):
            assert original.cell.platform == replay.cell.platform
            assert original.result.stats.as_dict() == replay.result.stats.as_dict()
            assert original.result.ipc == replay.result.ipc

    def test_record_uses_the_runners_seed_derivation(self, tmp_path):
        path = tmp_path / "betw.trace.json"
        recorded = record_trace("betw", path, scale=0.05, seed=9,
                                num_sms=4, warps_per_sm=2,
                                memory_instructions_per_warp=32)
        direct = build_trace("betw", TraceKnobs(
            scale=0.05, seed=cell_seed(9, "betw"), num_sms=4, warps_per_sm=2,
            memory_instructions_per_warp=32))
        assert trace_to_dict(recorded.trace) == trace_to_dict(direct)

    def test_trace_cells_key_on_file_content(self, tmp_path):
        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup", path, **KNOBS)
        spec = SweepSpec.create(platforms=["ZnG"],
                                workloads=[f"trace:{path}"], scale=0.05)
        key_before = spec.cells()[0].cache_key()
        trace_key_before = spec.cells()[0].trace_key()
        record_trace("kv-lookup:zipf=1.3", path, **KNOBS)  # rewrite in place
        fresh = SweepSpec.create(platforms=["ZnG"],
                                 workloads=[f"trace:{path}"], scale=0.05)
        assert fresh.cells()[0].cache_key() != key_before
        assert fresh.cells()[0].trace_key() != trace_key_before

    def test_relocating_a_replayed_trace_is_rejected(self, tmp_path):
        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup", path, **KNOBS)
        with pytest.raises(ValueError, match="cannot be relocated"):
            build_trace(f"trace:{path}", TraceKnobs(address_space_offset=4096))

    def test_external_trace_ingestion(self, tmp_path):
        # An externally captured trace (no generating token) is a
        # first-class workload as long as it speaks repro-trace-v1.
        trace = build_trace("betw", TraceKnobs(**KNOBS))
        path = tmp_path / "external.trace.json"
        write_trace_file(path, trace)
        loaded = read_trace_file(path)
        assert loaded.workload == ""
        result = run_sweep(SweepSpec.create(
            platforms=["ZnG"], workloads=[f"trace:{path}"], scale=0.05))
        assert result.runs[0].result.cycles > 0
        with pytest.raises(TraceFileError, match="no generating workload"):
            regenerate_from_meta(loaded)


class TestReviewRegressions:
    def test_missing_trace_file_fails_at_spec_creation(self, tmp_path):
        # Fail-fast contract: a bad trace path dies in SweepSpec.create,
        # not after N cells have run.
        with pytest.raises(TraceFileError, match="cannot stat"):
            SweepSpec.create(platforms=["ZnG"],
                             workloads=[f"trace:{tmp_path}/absent.json"])

    def test_mismatched_trace_knobs_are_rejected(self, tmp_path):
        # A replayed file cannot be reshaped by the sweep's trace knobs, so
        # labeling recorded data with different knobs must raise, not
        # silently mislabel.
        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup", path, **KNOBS)
        with pytest.raises(ValueError, match="different trace knobs"):
            build_trace(f"trace:{path}", TraceKnobs(
                scale=0.5, num_sms=KNOBS["num_sms"],
                warps_per_sm=KNOBS["warps_per_sm"],
                memory_instructions_per_warp=KNOBS[
                    "memory_instructions_per_warp"]))

    def test_matching_trace_knobs_replay(self, tmp_path):
        path = tmp_path / "kv.trace.json"
        recorded = record_trace("kv-lookup", path, **KNOBS)
        replayed = build_trace(f"trace:{path}", TraceKnobs(
            scale=KNOBS["scale"], seed=123,  # seed is derived, not checked
            num_sms=KNOBS["num_sms"], warps_per_sm=KNOBS["warps_per_sm"],
            memory_instructions_per_warp=KNOBS[
                "memory_instructions_per_warp"]))
        assert trace_to_dict(replayed) == trace_to_dict(recorded.trace)

    def test_pivoting_a_result_survives_a_deleted_trace_file(self, tmp_path):
        # Classification-only token parsing: once results exist, the pivots
        # must not need the trace file on disk (merged shard results are
        # routinely pivoted on another machine).
        from repro.analysis.figures import scenario_suite_from_result
        from repro.analysis.sensitivity import workload_axis_from_result

        path = tmp_path / "kv.trace.json"
        record_trace("kv-lookup", path, **KNOBS)
        result = run_sweep(SweepSpec.create(
            platforms=["ZnG"],
            workloads=[f"trace:{path}", "kv-lookup:zipf=1.1"],
            scale=KNOBS["scale"], num_sms=KNOBS["num_sms"],
            warps_per_sm=KNOBS["warps_per_sm"],
            memory_instructions_per_warp=KNOBS[
                "memory_instructions_per_warp"]))
        path.unlink()
        table = scenario_suite_from_result(result)
        assert f"trace:{path}" in table and "kv-lookup" in table
        axis = workload_axis_from_result(result, "kv-lookup", "zipf")
        assert list(axis) == [1.1]
