"""WorkloadSpec value validation (the nonsense-values satellite)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.registry import WORKLOAD_FAMILIES
from repro.workloads.suites import ALL_WORKLOADS
from repro.workloads.trace import WorkloadSpec


def _valid_spec(**overrides):
    base = dict(name="probe", suite="test", read_ratio=0.9, kernels=2,
                read_reaccess=10.0, write_redundancy=5.0)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestValidation:
    @pytest.mark.parametrize("field,value,message", [
        ("read_ratio", 1.5, "read_ratio must be in"),
        ("read_ratio", -0.1, "read_ratio must be in"),
        ("kernels", 0, "kernels must be >= 1"),
        ("read_reaccess", -1.0, "read_reaccess must be >= 0"),
        ("write_redundancy", -5.0, "write_redundancy must be >= 0"),
        ("sequential_fraction", 1.2, "sequential_fraction must be in"),
        ("compute_per_memory", -1, "compute_per_memory must be >= 0"),
        ("footprint_pages", 0, "footprint_pages must be >= 1"),
        ("zipf_alpha", -0.5, "zipf_alpha must be in"),
        ("zipf_alpha", 5.0, "zipf_alpha must be in"),
    ])
    def test_nonsense_values_raise_precisely(self, field, value, message):
        with pytest.raises(ValueError, match=message.replace("[", r"\[")):
            _valid_spec(**{field: value})

    def test_error_names_the_spec_and_lists_every_problem(self):
        with pytest.raises(ValueError) as excinfo:
            _valid_spec(read_ratio=2.0, footprint_pages=0)
        text = str(excinfo.value)
        assert "'probe'" in text
        assert "read_ratio" in text and "footprint_pages" in text

    def test_boundary_values_accepted(self):
        _valid_spec(read_ratio=0.0)
        _valid_spec(read_ratio=1.0)
        _valid_spec(sequential_fraction=0.0, zipf_alpha=0.0)
        _valid_spec(footprint_pages=1, kernels=1, compute_per_memory=0)

    def test_replace_revalidates(self):
        spec = _valid_spec()
        with pytest.raises(ValueError, match="read_ratio"):
            dataclasses.replace(spec, read_ratio=3.0)

    def test_every_catalogue_spec_validates(self):
        # Constructing them at import time already proves this; keep an
        # explicit probe so a relaxed validator cannot silently regress.
        for name, spec in ALL_WORKLOADS.items():
            WorkloadSpec(**dataclasses.asdict(spec))

    @settings(max_examples=50, deadline=None)
    @given(name=st.sampled_from(sorted(WORKLOAD_FAMILIES)),
           data=st.data())
    def test_every_family_rejects_out_of_bounds_params(self, name, data):
        # Property: any bounded numeric family parameter refuses values just
        # outside its declared range.
        family = WORKLOAD_FAMILIES[name]
        bounded = [p for p in family.params
                   if p.minimum is not None or p.maximum is not None]
        if not bounded:
            return
        param = data.draw(st.sampled_from(bounded))
        if param.maximum is not None:
            bad = param.maximum + 1
        else:
            bad = param.minimum - 1
        with pytest.raises(ValueError):
            family.resolve_params({param.name: bad})
