"""Tests for the synthetic trace generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.generators import TraceGenerator, generate_workload
from repro.workloads.suites import ALL_WORKLOADS, workload_by_name


class TestGeneration:
    def test_deterministic(self):
        spec = workload_by_name("betw")
        a = generate_workload(spec, scale=0.1, seed=42)
        b = generate_workload(spec, scale=0.1, seed=42)
        assert a.total_memory_instructions == b.total_memory_instructions
        assert a.page_read_counts == b.page_read_counts

    def test_read_ratio_approximated(self):
        for name in ["betw", "bfs1", "back", "gaus"]:
            spec = workload_by_name(name)
            trace = generate_workload(spec, scale=0.3, seed=1,
                                      warps_per_sm=4, memory_instructions_per_warp=64)
            assert trace.measured_read_ratio == pytest.approx(spec.read_ratio, abs=0.08)

    def test_read_only_workload_has_no_writes(self):
        trace = generate_workload(workload_by_name("deg"), scale=0.2, seed=1)
        assert sum(trace.page_write_counts.values()) == 0

    def test_scale_increases_work(self):
        spec = workload_by_name("betw")
        small = generate_workload(spec, scale=0.1, seed=1)
        large = generate_workload(spec, scale=0.4, seed=1)
        assert large.total_memory_instructions > small.total_memory_instructions

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            TraceGenerator(workload_by_name("betw"), scale=0.0)

    def test_address_offset_applied(self):
        spec = workload_by_name("betw")
        offset_pages = 1000
        trace = generate_workload(spec, scale=0.1, seed=1,
                                  address_space_offset=offset_pages * 4096)
        for warp in trace.warps:
            for instr in warp.instructions:
                for address in instr.addresses:
                    assert address >= offset_pages * 4096

    def test_sm_assignment(self):
        trace = generate_workload(workload_by_name("betw"), scale=0.2, seed=1, num_sms=8)
        sm_ids = {w.sm_id for w in trace.warps}
        assert sm_ids <= set(range(8))


class TestStatisticsCalibration:
    @pytest.mark.parametrize("name", ["betw", "gc1", "pr"])
    def test_read_reaccess_in_reasonable_range(self, name):
        spec = workload_by_name(name)
        trace = generate_workload(spec, scale=0.5, seed=7,
                                  warps_per_sm=6, memory_instructions_per_warp=96)
        # Calibrated toward the Fig. 5b target; allow generous tolerance since
        # it is an emergent statistic of the synthetic generator.
        assert trace.mean_read_reaccess > 1.0

    def test_write_redundancy_positive_for_write_workloads(self):
        spec = workload_by_name("gaus")
        trace = generate_workload(spec, scale=0.5, seed=7,
                                  warps_per_sm=6, memory_instructions_per_warp=96)
        assert trace.mean_write_redundancy > 1.0


class TestProperties:
    @given(scale=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=15, deadline=None)
    def test_coalesced_addresses_in_footprint(self, scale):
        spec = workload_by_name("bfs1")
        trace = generate_workload(spec, scale=scale, seed=3)
        footprint_bytes = trace.footprint_pages * 4096
        for warp in trace.warps[:5]:
            for instr in warp.instructions:
                for address in instr.addresses:
                    assert 0 <= address < footprint_bytes

    @given(name=st.sampled_from(list(ALL_WORKLOADS)))
    @settings(max_examples=16, deadline=None)
    def test_every_workload_generates(self, name):
        trace = generate_workload(workload_by_name(name), scale=0.1, seed=1)
        assert trace.total_memory_instructions > 0
        assert len(trace.warps) > 0
