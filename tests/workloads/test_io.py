"""Tests for workload trace serialisation."""

import pytest

from repro.workloads import io
from repro.workloads.generators import generate_workload
from repro.workloads.microbench import streaming
from repro.workloads.suites import workload_by_name


class TestRoundTrip:
    def test_generated_trace_round_trip(self):
        trace = generate_workload(workload_by_name("betw"), scale=0.05, seed=1)
        restored = io.loads(io.dumps(trace))
        assert restored.spec.name == trace.spec.name
        assert restored.total_memory_instructions == trace.total_memory_instructions
        assert restored.page_read_counts == trace.page_read_counts
        assert restored.page_write_counts == trace.page_write_counts

    def test_micro_trace_round_trip(self):
        trace = streaming(num_warps=4, accesses_per_warp=8)
        restored = io.loads(io.dumps(trace))
        assert len(restored.warps) == len(trace.warps)
        for a, b in zip(trace.warps, restored.warps):
            assert len(a.instructions) == len(b.instructions)

    def test_access_types_preserved(self):
        trace = generate_workload(workload_by_name("back"), scale=0.05, seed=1)
        restored = io.loads(io.dumps(trace))
        original_writes = sum(w.write_instructions for w in trace.warps)
        restored_writes = sum(w.write_instructions for w in restored.warps)
        assert original_writes == restored_writes

    def test_file_save_load(self, tmp_path):
        trace = streaming(num_warps=2, accesses_per_warp=4)
        path = str(tmp_path / "trace.json")
        io.save_trace(trace, path)
        restored = io.load_trace(path)
        assert restored.footprint_pages == trace.footprint_pages


class TestSpecSerialization:
    def test_spec_round_trip(self):
        spec = workload_by_name("pr")
        restored = io.spec_from_dict(io.spec_to_dict(spec))
        assert restored == spec
