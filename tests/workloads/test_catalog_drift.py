"""Workload-catalogue drift gate (CI satellite).

The golden file (``tests/data/workload_catalog.txt``) pins every registered
workload family and every typed family parameter, mirroring the config-schema
drift gate: a family or parameter added, removed or re-documented without
regenerating the golden file fails here with regeneration instructions.
"""

from pathlib import Path

from repro.workloads.registry import WORKLOAD_FAMILIES, catalog_lines

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "workload_catalog.txt"

REGENERATE = (
    "regenerate with: PYTHONPATH=src python -m repro workloads --golden "
    "> tests/data/workload_catalog.txt"
)


def test_catalogue_matches_golden_file():
    golden = GOLDEN.read_text().splitlines()
    current = catalog_lines()
    added = sorted(set(current) - set(golden))
    removed = sorted(set(golden) - set(current))
    assert current == golden, (
        f"workload catalogue drifted from the golden file "
        f"({len(added)} added/changed, {len(removed)} removed/changed); "
        f"review the diff and {REGENERATE}\n"
        f"added:   {[line.split(chr(9))[0] for line in added]}\n"
        f"removed: {[line.split(chr(9))[0] for line in removed]}"
    )


def test_golden_file_covers_every_family():
    lines = GOLDEN.read_text().splitlines()
    family_lines = [line for line in lines if ":" not in line.split("\t")[0]]
    assert len(family_lines) == len(WORKLOAD_FAMILIES)
