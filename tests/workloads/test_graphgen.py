"""Tests for the CSR graph generator and graph-traversal workloads."""

import numpy as np
import pytest

from repro.workloads.graphgen import (
    CSRGraph,
    bfs_traversal,
    generate_power_law_graph,
    pagerank_iteration,
)


class TestCSRGraph:
    def test_generation_shape(self):
        g = generate_power_law_graph(num_vertices=500, avg_degree=8, seed=1)
        assert g.num_vertices == 500
        assert g.row_offsets.shape[0] == 501
        assert g.column_index.shape[0] == g.num_edges

    def test_row_offsets_monotonic(self):
        g = generate_power_law_graph(num_vertices=300, avg_degree=6, seed=2)
        assert np.all(np.diff(g.row_offsets) >= 0)

    def test_neighbours_within_range(self):
        g = generate_power_law_graph(num_vertices=200, avg_degree=4, seed=3)
        assert g.column_index.max() < g.num_vertices
        assert g.column_index.min() >= 0

    def test_degree_matches_row_offsets(self):
        g = generate_power_law_graph(num_vertices=100, avg_degree=4, seed=1)
        for v in range(g.num_vertices):
            assert g.degree(v) == len(g.neighbours(v))

    def test_power_law_reuse_in_column_index(self):
        """Preferential attachment concentrates references on hub vertices."""
        g = generate_power_law_graph(num_vertices=1000, avg_degree=8, seed=1)
        counts = np.bincount(g.column_index, minlength=g.num_vertices)
        # The most-referenced vertex is referenced far more than the mean.
        assert counts.max() > 5 * counts.mean()

    def test_deterministic(self):
        a = generate_power_law_graph(num_vertices=200, avg_degree=4, seed=7)
        b = generate_power_law_graph(num_vertices=200, avg_degree=4, seed=7)
        assert np.array_equal(a.column_index, b.column_index)


class TestBFS:
    def test_read_dominated(self):
        g = generate_power_law_graph(num_vertices=1000, avg_degree=8, seed=1)
        trace = bfs_traversal(g, num_warps=32, seed=1)
        assert trace.measured_read_ratio > 0.75

    def test_produces_reuse(self):
        g = generate_power_law_graph(num_vertices=1000, avg_degree=8, seed=1)
        trace = bfs_traversal(g, num_warps=32, seed=1)
        assert trace.mean_read_reaccess > 1.0

    def test_runs_on_platform(self):
        from repro.platforms import build_platform

        g = generate_power_law_graph(num_vertices=500, avg_degree=8, seed=1)
        trace = bfs_traversal(g, num_warps=16, seed=1)
        result = build_platform("ZnG").run(trace)
        assert result.ipc > 0


class TestPageRank:
    def test_read_intensive(self):
        g = generate_power_law_graph(num_vertices=1000, avg_degree=8, seed=1)
        trace = pagerank_iteration(g, num_warps=32, seed=1)
        assert trace.measured_read_ratio > 0.85

    def test_heavy_hub_reuse(self):
        g = generate_power_law_graph(num_vertices=1000, avg_degree=8, seed=1)
        trace = pagerank_iteration(g, num_warps=32, seed=1)
        # Hub rank entries are re-read many times per iteration.
        assert trace.mean_read_reaccess > 20.0

    def test_zng_extracts_more_flash_bandwidth(self):
        """On a realistic PageRank trace ZnG drives far more flash-array
        bandwidth than HybridGPU's single-controller SSD path."""
        from repro.platforms import build_platform

        g = generate_power_law_graph(num_vertices=2000, avg_degree=8, seed=1)
        trace = pagerank_iteration(g, num_warps=64, seed=1)
        zng = build_platform("ZnG").run(trace)
        hybrid = build_platform("HybridGPU").run(trace)
        assert zng.ipc > 0 and hybrid.ipc > 0
        assert zng.flash_array_read_bandwidth_gbps >= hybrid.flash_array_read_bandwidth_gbps
