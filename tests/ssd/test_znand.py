"""Unit and property tests for the Z-NAND flash array."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ZNANDConfig, us_to_cycles
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import PageState, ZNANDArray


def small_array(network_type="mesh"):
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=4,
    )
    return ZNANDArray(config, network=FlashNetwork(config, network_type))


class TestTiming:
    def test_read_latency_matches_config(self):
        array = small_array()
        result = array.read_page(0, now=0.0)
        # Array latency includes the 3 us sense plus command overhead.
        assert result.array_cycles >= us_to_cycles(3.0)

    def test_program_slower_than_read(self):
        array = small_array()
        read = array.read_page(0, now=0.0)
        program = array.program_page(1, now=0.0)
        assert program.array_cycles > read.array_cycles

    def test_erase_is_expensive(self):
        array = small_array()
        result = array.erase_block(plane_id=0, block=0, now=0.0)
        assert result.array_cycles >= us_to_cycles(100.0)

    def test_partial_transfer_still_senses_full_page(self):
        array = small_array()
        full = array.read_page(0, now=0.0)
        array.reset_statistics()
        partial = array.read_page(0, now=0.0, transfer_bytes=128)
        # The array sense time is identical; only the network transfer shrinks.
        assert partial.array_cycles == full.array_cycles
        assert partial.transfer_cycles < full.transfer_cycles

    def test_plane_serializes_operations(self):
        array = small_array()
        # Two reads to the same plane (ppn 0 and ppn that maps to same plane).
        same_plane_ppn = array.geometry.ppn_of(0, 0, 1)
        first = array.read_page(0, now=0.0)
        second = array.read_page(same_plane_ppn, now=0.0)
        assert second.start_cycle >= first.completion_cycle - first.transfer_cycles


class TestPageState:
    def test_program_marks_valid(self):
        array = small_array()
        array.program_page(0, now=0.0)
        assert array.page_state(0) == PageState.VALID

    def test_mark_invalid(self):
        array = small_array()
        array.program_page(0, now=0.0)
        array.mark_invalid(0)
        assert array.page_state(0) == PageState.INVALID

    def test_valid_page_count(self):
        array = small_array()
        ppns = [array.geometry.ppn_of(0, 0, p) for p in range(4)]
        for ppn in ppns:
            array.program_page(ppn, now=0.0)
        state = array.block_state(0, 0)
        assert state.valid_pages == 4

    def test_erase_resets_block(self):
        array = small_array()
        for page in range(4):
            array.program_page(array.geometry.ppn_of(0, 0, page), now=0.0)
        array.erase_block(0, 0, now=0.0)
        state = array.block_state(0, 0)
        assert state.next_free_page == 0
        assert state.valid_pages == 0
        assert state.erase_count == 1


class TestStatistics:
    def test_read_write_counts(self):
        array = small_array()
        array.read_page(0, now=0.0)
        array.program_page(1, now=0.0)
        assert array.page_reads == 1
        assert array.page_programs == 1

    def test_per_plane_counts(self):
        array = small_array()
        array.program_page(0, now=0.0)  # plane 0
        array.program_page(1, now=0.0)  # plane mapped from ppn 1
        assert array.writes_per_plane.sum() == 2

    def test_write_heatmap_shape(self):
        array = small_array()
        heatmap = array.write_heatmap()
        assert heatmap.shape == (4, array.geometry.total_planes // 4)

    def test_read_bandwidth_positive(self):
        array = small_array()
        completion = 0.0
        for ppn in range(8):
            completion = max(completion, array.read_page(ppn, now=0.0).completion_cycle)
        assert array.array_read_bandwidth_bytes_per_s(completion) > 0

    def test_reset_statistics(self):
        array = small_array()
        array.read_page(0, now=0.0)
        array.reset_statistics()
        assert array.page_reads == 0
        assert array.reads_per_plane.sum() == 0


class TestRegisterCopy:
    def test_same_channel_single_traversal(self):
        array = small_array()
        completion = array.register_to_register_copy(0, 0, 4096, now=0.0)
        assert completion > 0.0

    def test_cross_channel_two_traversals(self):
        array = small_array()
        same = array.register_to_register_copy(0, 0, 4096, now=0.0)
        array.reset_statistics()
        cross = array.register_to_register_copy(0, 1, 4096, now=0.0)
        assert cross > same


class TestProperties:
    @given(ppns=st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_bytes_read_tracks_reads(self, ppns):
        array = small_array()
        for ppn in ppns:
            array.read_page(ppn % array.geometry.total_pages, now=0.0)
        assert array.bytes_read_from_array == len(ppns) * array.config.page_size_bytes

    @given(page=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_program_advances_free_pointer(self, page):
        array = small_array()
        ppn = array.geometry.ppn_of(0, 0, page)
        array.program_page(ppn, now=0.0)
        assert array.block_state(0, 0).next_free_page >= page + 1
