"""Unit tests for the garbage collector."""

import pytest

from repro.config import ZNANDConfig
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.gc import GarbageCollector
from repro.ssd.znand import ZNANDArray


def make_array():
    config = ZNANDConfig(
        channels=2, dies_per_package=1, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=4,
    )
    return ZNANDArray(config, network=FlashNetwork(config, "mesh"))


class TestVictimSelection:
    def test_selects_fewest_valid_pages(self):
        array = make_array()
        gc = GarbageCollector(array)
        # Block 0: 3 valid pages, Block 1: 1 valid page.
        for page in range(3):
            array.program_page(array.geometry.ppn_of(0, 0, page), now=0.0)
        array.program_page(array.geometry.ppn_of(0, 1, 0), now=0.0)
        assert gc.select_victim(0, [0, 1]) == 1

    def test_empty_candidates(self):
        array = make_array()
        gc = GarbageCollector(array)
        assert gc.select_victim(0, []) is None


class TestWearLeveling:
    def test_prefers_lowest_erase_count(self):
        array = make_array()
        gc = GarbageCollector(array, wear_leveling=True)
        array.erase_block(0, 2, now=0.0)  # block 2 now has erase_count 1
        destination = gc.select_destination(0, [2, 3])
        assert destination == 3

    def test_wear_leveling_disabled_picks_first(self):
        array = make_array()
        gc = GarbageCollector(array, wear_leveling=False)
        assert gc.select_destination(0, [5, 3, 7]) == 5

    def test_no_free_blocks(self):
        array = make_array()
        gc = GarbageCollector(array)
        assert gc.select_destination(0, []) is None


class TestCollect:
    def test_migrates_and_erases(self):
        array = make_array()
        gc = GarbageCollector(array)
        valid = [array.geometry.ppn_of(0, 0, p) for p in range(2)]
        for ppn in valid:
            array.program_page(ppn, now=0.0)

        relocations = []

        def relocate(ppn, time):
            relocations.append(ppn)
            return ppn, time + 100.0

        result = gc.collect(0, victim_block=0, valid_ppns=valid, relocate=relocate, now=0.0)
        assert result.blocks_erased == 1
        assert result.pages_migrated == 2
        assert relocations == valid
        assert gc.total_blocks_erased == 1
