"""Unit tests for the SSD engine (dispatcher + cores + DRAM buffer)."""

import pytest

from repro.config import SSDEngineConfig, ZNANDConfig
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.ssd_engine import SSDEngine
from repro.ssd.znand import ZNANDArray


def make_engine():
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=16, pages_per_block=8,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "bus"))
    return SSDEngine(SSDEngineConfig(), array)


class TestService:
    def test_cold_read_hits_flash(self):
        engine = make_engine()
        result = engine.service(0x1000, 128, is_write=False, now=0.0)
        assert "flash_array" in result.breakdown
        assert not result.buffer_hit

    def test_warm_read_hits_buffer(self):
        engine = make_engine()
        engine.service(0x1000, 128, is_write=False, now=0.0)
        result = engine.service(0x1000, 128, is_write=False, now=1e6)
        assert result.buffer_hit
        assert "flash_array" not in result.breakdown

    def test_engine_latency_present(self):
        engine = make_engine()
        result = engine.service(0x2000, 128, is_write=False, now=0.0)
        assert result.breakdown["ssd_engine"] > 0
        assert result.breakdown["ssd_dispatcher"] > 0

    def test_engine_is_throughput_bottleneck(self):
        """Many concurrent requests serialize on the limited embedded cores."""
        engine = make_engine()
        last = 0.0
        for i in range(50):
            result = engine.service(i * 4096, 128, is_write=False, now=0.0)
            last = max(last, result.completion_cycle)
        # With only a few cores at a low request rate, 50 requests take a while.
        assert last > 0.0
        assert engine.requests_serviced == 50

    def test_write_path(self):
        engine = make_engine()
        result = engine.service(0x3000, 128, is_write=True, now=0.0)
        assert result.completion_cycle > 0.0

    def test_buffer_hit_rate(self):
        engine = make_engine()
        engine.service(0x1000, 128, is_write=False, now=0.0)
        engine.service(0x1000, 128, is_write=False, now=1e6)
        assert engine.buffer_hit_rate == pytest.approx(0.5)

    def test_reset(self):
        engine = make_engine()
        engine.service(0x1000, 128, is_write=False, now=0.0)
        engine.reset_statistics()
        assert engine.requests_serviced == 0
        assert engine.buffer_hits == 0
