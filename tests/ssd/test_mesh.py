"""Unit and property tests for the 2-D mesh flash-network routing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ZNANDConfig
from repro.ssd.mesh import MeshCoord, MeshFlashNetwork


def make_mesh(channels=16):
    return MeshFlashNetwork(ZNANDConfig(channels=channels))


class TestTopology:
    def test_dimension(self):
        assert make_mesh(16).dim == 4
        assert make_mesh(9).dim == 3

    def test_coord_round_trip(self):
        mesh = make_mesh(16)
        for router in range(16):
            coord = mesh.coord(router)
            assert mesh.router_of(coord) == router

    def test_corner_has_two_neighbours(self):
        mesh = make_mesh(16)
        assert len(mesh._neighbours(0)) == 2

    def test_interior_has_four_neighbours(self):
        mesh = make_mesh(16)
        assert len(mesh._neighbours(5)) == 4

    def test_link_count(self):
        mesh = make_mesh(16)
        # 4x4 mesh: 24 undirected edges -> 48 directed links.
        assert mesh.num_links == 48


class TestRouting:
    def test_same_router_single_node(self):
        mesh = make_mesh(16)
        assert mesh.route(5, 5) == [5]

    def test_xy_route_length(self):
        mesh = make_mesh(16)
        path = mesh.route(0, 15)  # (0,0) -> (3,3): 6 hops
        assert len(path) == 7
        assert path[0] == 0 and path[-1] == 15

    def test_hop_count_manhattan(self):
        mesh = make_mesh(16)
        assert mesh.hop_count(0, 15) == 6
        assert mesh.hop_count(0, 1) == 1
        assert mesh.hop_count(5, 5) == 0

    def test_adjacent_path_uses_real_links(self):
        mesh = make_mesh(16)
        path = mesh.route(0, 1)
        for a, b in zip(path, path[1:]):
            assert (a, b) in mesh._links

    def test_average_hop_count_reasonable(self):
        mesh = make_mesh(16)
        avg = mesh.average_hop_count()
        # Average Manhattan distance on a 4x4 mesh is ~2.67.
        assert 2.0 < avg < 3.0


class TestTransfer:
    def test_transfer_returns_completion(self):
        mesh = make_mesh(16)
        completion = mesh.transfer(0, 15, 4096, now=0.0)
        assert completion > 0.0
        assert mesh.packets == 1
        assert mesh.total_hops == 6

    def test_same_router_transfer_cheap(self):
        mesh = make_mesh(16)
        local = mesh.transfer(5, 5, 4096, now=0.0)
        remote = mesh.transfer(0, 15, 4096, now=0.0)
        assert local < remote

    def test_link_contention(self):
        mesh = make_mesh(16)
        first = mesh.transfer(0, 3, 8192, now=0.0)   # uses links 0-1-2-3
        second = mesh.transfer(0, 3, 8192, now=0.0)  # contends on the same links
        assert second > first

    def test_reset(self):
        mesh = make_mesh(16)
        mesh.transfer(0, 15, 4096, now=0.0)
        mesh.reset()
        assert mesh.packets == 0
        assert mesh.total_hops == 0


class TestProperties:
    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_route_endpoints(self, src, dst):
        mesh = make_mesh(16)
        path = mesh.route(src, dst)
        assert path[0] == src
        assert path[-1] == dst

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_path_length_matches_hops(self, src, dst):
        mesh = make_mesh(16)
        path = mesh.route(src, dst)
        assert len(path) - 1 == mesh.hop_count(src, dst)
