"""Unit and property tests for the conventional page-mapped FTL firmware."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ZNANDConfig
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.ftl_firmware import PageMappedFTL
from repro.ssd.znand import ZNANDArray


def make_ftl(gc_threshold=0.05):
    config = ZNANDConfig(
        channels=2, dies_per_package=1, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=4,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    return PageMappedFTL(array, gc_free_block_threshold=gc_threshold)


class TestMapping:
    def test_write_then_translate(self):
        ftl = make_ftl()
        ftl.write(10, now=0.0)
        assert ftl.translate(10) is not None

    def test_out_of_place_update(self):
        ftl = make_ftl()
        ftl.write(10, now=0.0)
        first_ppn = ftl.translate(10)
        ftl.write(10, now=1000.0)
        second_ppn = ftl.translate(10)
        assert first_ppn != second_ppn
        # The old physical page must be invalidated.
        assert ftl.array.page_state(first_ppn) != 1  # not VALID

    def test_read_unmapped_allocates(self):
        ftl = make_ftl()
        result = ftl.read(42, now=0.0)
        assert result.completion_cycle > 0.0
        assert ftl.translate(42) is not None

    def test_write_mapping_only_no_program(self):
        ftl = make_ftl()
        _, _ = ftl.write_mapping_only(5, now=0.0)
        assert ftl.array.page_programs == 0
        assert ftl.translate(5) is not None


class TestGarbageCollection:
    def test_gc_triggers_when_blocks_exhaust(self):
        ftl = make_ftl(gc_threshold=0.2)
        # Repeatedly rewrite a small working set so out-of-place updates burn
        # through every plane's free blocks and force a GC pass.
        time = 0.0
        for _ in range(40):
            for lpn in range(16):
                result = ftl.write(lpn, now=time)
                time = result.completion_cycle
        assert ftl.gc_invocations >= 1

    def test_write_amplification_at_least_one(self):
        ftl = make_ftl()
        for lpn in range(8):
            ftl.write(lpn, now=0.0)
        assert ftl.write_amplification_factor >= 1.0


class TestMappingTableSize:
    def test_full_page_table_is_large(self):
        """A full page-mapping table is much bigger than the ZnG DBMT (80 KB)."""
        ftl = make_ftl()
        # 4-byte entries per page.
        assert ftl.mapping_table_bytes == ftl.geometry.total_pages * 4


class TestProperties:
    @given(writes=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_mapping_reflects_latest_write(self, writes):
        ftl = make_ftl(gc_threshold=0.1)
        time = 0.0
        for lpn in writes:
            result = ftl.write(lpn, now=time)
            time = result.completion_cycle
        # Every written logical page must resolve to a valid physical page.
        for lpn in set(writes):
            ppn = ftl.translate(lpn)
            assert ppn is not None
