"""Unit tests for the Z-NAND endurance / lifetime model."""

import pytest

from repro.config import ZNANDConfig
from repro.ssd.endurance import EnduranceModel
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.ftl_firmware import PageMappedFTL
from repro.ssd.znand import ZNANDArray


def make_model():
    config = ZNANDConfig(
        channels=2, dies_per_package=1, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=4,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    return EnduranceModel(array, config), array, config


class TestEnduranceReport:
    def test_fresh_device(self):
        model, _, config = make_model()
        report = model.report()
        assert report.pe_cycle_limit == config.pe_cycle_limit
        assert report.max_erase_count == 0
        assert report.wear_fraction == 0.0
        assert report.remaining_pe_cycles == config.pe_cycle_limit

    def test_write_amplification(self):
        model, array, _ = make_model()
        model.record_host_writes(4)
        for ppn in range(8):
            array.program_page(ppn, now=0.0)
        report = model.report()
        # 8 programs for 4 host writes => WAF 2.
        assert report.write_amplification == pytest.approx(2.0)

    def test_wear_fraction_tracks_erases(self):
        model, array, config = make_model()
        for _ in range(10):
            array.erase_block(0, 0, now=0.0)
        report = model.report()
        assert report.max_erase_count == 10
        assert report.wear_fraction == pytest.approx(10 / config.pe_cycle_limit)


class TestLifetime:
    def test_infinite_without_writes(self):
        model, _, _ = make_model()
        assert model.estimate_lifetime_days(0.0, 1.0) == float("inf")

    def test_higher_write_rate_shortens_life(self):
        model, array, _ = make_model()
        model.record_host_writes(100)
        for ppn in range(100):
            array.program_page(ppn % array.geometry.total_pages, now=0.0)
        slow = model.estimate_lifetime_days(1e3, 1.0)
        fast = model.estimate_lifetime_days(1e6, 1.0)
        assert fast < slow


class TestEnduranceGain:
    def test_buffering_extends_endurance(self):
        model, _, _ = make_model()
        # 1000 host writes absorbed into 100 flash programs => 11x endurance.
        gain = model.endurance_gain_from_buffering(writes_absorbed=900, writes_programmed=100)
        assert gain == pytest.approx(10.0)

    def test_no_programs_is_infinite(self):
        model, _, _ = make_model()
        assert model.endurance_gain_from_buffering(100, 0) == float("inf")
