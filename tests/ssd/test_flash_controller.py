"""Unit tests for flash controllers and the controller array."""

import pytest

from repro.config import ZNANDConfig
from repro.ssd.flash_controller import FlashController, FlashControllerArray
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def small_array():
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=4,
    )
    return ZNANDArray(config, network=FlashNetwork(config, "mesh"))


class TestFlashController:
    def test_read_issues_command(self):
        array = small_array()
        controller = FlashController(channel=0, array=array)
        result = controller.read(0, now=0.0)
        assert result.completion_cycle > 0.0
        assert controller.commands_issued == 1

    def test_program_issues_command(self):
        array = small_array()
        controller = FlashController(channel=0, array=array)
        result = controller.program(0, now=0.0)
        assert array.page_programs == 1
        assert result.completion_cycle > 0.0

    def test_decode(self):
        array = small_array()
        controller = FlashController(channel=0, array=array)
        command = controller.decode(5, is_program=False)
        assert command.location == array.geometry.decompose(5)

    def test_dispatcher_serializes(self):
        array = small_array()
        controller = FlashController(channel=0, array=array)
        first = controller.read(0, now=0.0)
        second = controller.read(array.geometry.ppn_of(1, 0, 0), now=0.0)
        # Both go through the same per-channel dispatcher.
        assert second.start_cycle >= 0.0


class TestFlashControllerArray:
    def test_routes_by_channel(self):
        array = small_array()
        controllers = FlashControllerArray(array)
        assert len(controllers) == 4
        controller = controllers.controller_for_ppn(1)
        assert controller.channel == array.geometry.channel_of_ppn(1)

    def test_read_and_program(self):
        array = small_array()
        controllers = FlashControllerArray(array)
        controllers.read(0, now=0.0)
        controllers.program(1, now=0.0)
        assert controllers.commands_issued == 2

    def test_reset(self):
        array = small_array()
        controllers = FlashControllerArray(array)
        controllers.read(0, now=0.0)
        controllers.reset()
        assert controllers.commands_issued == 0
