"""Unit tests for the Optane DC PMM model."""

import pytest

from repro.config import OptaneConfig
from repro.ssd.optane import OptaneMemory


class TestOptaneMemory:
    def test_read_access(self):
        optane = OptaneMemory(OptaneConfig())
        completion = optane.access(0x1000, 256, is_write=False, now=0.0)
        assert completion > 0.0
        assert optane.reads == 1

    def test_small_write_rounds_to_granule(self):
        optane = OptaneMemory(OptaneConfig())
        # A 128 B write is padded to the 256 B internal granularity.
        optane.access(0x0, 128, is_write=True, now=0.0)
        assert optane.bytes_accessed == 256

    def test_write_slower_than_read(self):
        optane = OptaneMemory(OptaneConfig())
        read = optane.access(0x0, 256, is_write=False, now=0.0)
        write = optane.access(1 << 20, 256, is_write=True, now=0.0)
        assert write > read

    def test_bandwidth_capped(self):
        optane = OptaneMemory(OptaneConfig())
        completion = 0.0
        for i in range(200):
            completion = max(completion, optane.access(i * 256, 256, is_write=False, now=0.0))
        bw = optane.achieved_bandwidth_bytes_per_s(completion)
        # Achieved bandwidth should not exceed the configured read ceiling.
        assert bw <= OptaneConfig().read_bandwidth_gbps_total * 1e9 * 1.05

    def test_reset(self):
        optane = OptaneMemory(OptaneConfig())
        optane.access(0x0, 256, is_write=False, now=0.0)
        optane.reset_statistics()
        assert optane.reads == 0
        assert optane.bytes_accessed == 0
