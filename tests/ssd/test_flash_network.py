"""Unit tests for the bus and mesh flash networks."""

import pytest

from repro.config import ZNANDConfig
from repro.ssd.flash_network import FlashNetwork


class TestFlashNetwork:
    def test_bus_narrower_than_mesh(self):
        config = ZNANDConfig()
        bus = FlashNetwork(config, network_type="bus")
        mesh = FlashNetwork(config, network_type="mesh")
        assert mesh.per_channel_bandwidth_bytes_per_s > bus.per_channel_bandwidth_bytes_per_s

    def test_mesh_is_8x_bus(self):
        """Table I: flash network bus width 8 B vs conventional 1 B channel."""
        config = ZNANDConfig()
        bus = FlashNetwork(config, network_type="bus")
        mesh = FlashNetwork(config, network_type="mesh")
        ratio = mesh.per_channel_bandwidth_bytes_per_s / bus.per_channel_bandwidth_bytes_per_s
        assert ratio == pytest.approx(8.0)

    def test_transfer_completion(self):
        network = FlashNetwork(ZNANDConfig(), network_type="mesh")
        completion = network.transfer(channel=0, num_bytes=4096, now=0.0)
        assert completion > 0.0

    def test_mesh_has_hop_latency(self):
        config = ZNANDConfig()
        mesh = FlashNetwork(config, network_type="mesh")
        # A zero-byte transfer still pays the mesh hop latency.
        completion = mesh.transfer(0, 0, 0.0)
        assert completion > 0.0

    def test_channel_contention(self):
        network = FlashNetwork(ZNANDConfig(), network_type="bus")
        first = network.transfer(0, 4096, 0.0)
        second = network.transfer(0, 4096, 0.0)
        assert second > first

    def test_independent_channels_parallel(self):
        network = FlashNetwork(ZNANDConfig(), network_type="mesh")
        a = network.transfer(0, 4096, 0.0)
        b = network.transfer(1, 4096, 0.0)
        assert a == pytest.approx(b)

    def test_total_bandwidth_scales_with_channels(self):
        network = FlashNetwork(ZNANDConfig(), network_type="mesh")
        assert network.total_bandwidth_bytes_per_s == pytest.approx(
            network.per_channel_bandwidth_bytes_per_s * 16
        )

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            FlashNetwork(ZNANDConfig(), network_type="ring")

    def test_reset(self):
        network = FlashNetwork(ZNANDConfig(), network_type="mesh")
        network.transfer(0, 128, 0.0)
        network.reset()
        assert network.bytes_transferred() == 0
