"""Unit and property tests for the flash geometry / address decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ZNANDConfig
from repro.ssd.geometry import FlashGeometry, FlashLocation


def small_geometry():
    return FlashGeometry(
        ZNANDConfig(
            channels=4, dies_per_package=2, planes_per_die=2,
            blocks_per_plane=8, pages_per_block=4,
        )
    )


def full_geometry():
    return FlashGeometry(ZNANDConfig())


class TestCapacity:
    def test_total_planes(self):
        geom = full_geometry()
        assert geom.total_planes == 16 * 8 * 8  # channels x dies x planes

    def test_total_capacity(self):
        geom = full_geometry()
        assert geom.capacity_bytes == geom.total_pages * geom.page_size_bytes

    def test_small_geometry_planes(self):
        geom = small_geometry()
        assert geom.total_planes == 4 * 2 * 2


class TestDecomposition:
    def test_ppn_zero(self):
        geom = small_geometry()
        loc = geom.decompose(0)
        assert loc == FlashLocation(0, 0, 0, 0, 0)

    def test_consecutive_ppns_stripe_channels(self):
        geom = small_geometry()
        assert geom.decompose(0).channel == 0
        assert geom.decompose(1).channel == 1
        assert geom.decompose(geom.channels).channel == 0

    def test_out_of_range_rejected(self):
        geom = small_geometry()
        with pytest.raises(ValueError):
            geom.decompose(geom.total_pages)
        with pytest.raises(ValueError):
            geom.decompose(-1)

    def test_plane_id_range(self):
        geom = small_geometry()
        ids = {geom.plane_of_ppn(ppn) for ppn in range(geom.total_pages)}
        assert ids == set(range(geom.total_planes))

    def test_channel_of_ppn(self):
        geom = small_geometry()
        assert geom.channel_of_ppn(5) == 5 % geom.channels


class TestRoundTrips:
    @given(ppn=st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_compose_decompose_identity(self, ppn):
        geom = small_geometry()
        ppn = ppn % geom.total_pages
        assert geom.compose(geom.decompose(ppn)) == ppn

    @given(ppn=st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_ppn_of_matches_decompose(self, ppn):
        geom = small_geometry()
        ppn = ppn % geom.total_pages
        loc = geom.decompose(ppn)
        plane_id = geom.plane_id(loc)
        assert geom.ppn_of(plane_id, loc.block, loc.page) == ppn

    @given(
        plane=st.integers(min_value=0, max_value=15),
        block=st.integers(min_value=0, max_value=7),
        page=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_block_id_consistent(self, plane, block, page):
        geom = small_geometry()
        ppn = geom.ppn_of(plane, block, page)
        loc = geom.decompose(ppn)
        assert geom.plane_id(loc) == plane
        assert loc.block == block
        assert loc.page == page


class TestByteAddressing:
    def test_byte_address_to_ppn(self):
        geom = small_geometry()
        page_size = geom.page_size_bytes
        assert geom.byte_address_to_ppn(0) == 0
        assert geom.byte_address_to_ppn(page_size + 100) == 1

    def test_byte_address_wraps(self):
        geom = small_geometry()
        wrapped = geom.byte_address_to_ppn(geom.total_pages * geom.page_size_bytes)
        assert wrapped == 0
