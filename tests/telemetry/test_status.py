"""``repro status``: queue snapshots over live, finished, and stalled fleets.

The fake queues here are written with the exact on-disk shapes the dispatch
fabric produces (queue.json registration, ``leases/<key>.gen-N.json`` with
mtime heartbeats, ``done/<key>.json`` markers), driven by an injectable
clock so every state renders deterministically.
"""

import json
import os

from repro.telemetry.status import (
    discover_queue_dirs,
    manifest_status,
    queue_status,
    render_manifest_status,
    render_queue_status,
)

NOW = 1_000_000.0


def _key(index: int) -> str:
    return f"{index:064x}"


def _fake_queue(root, cells=4, ttl=30.0):
    queue = root / "dispatch" / "abcd1234abcd1234"
    (queue / "leases").mkdir(parents=True)
    (queue / "done").mkdir()
    (queue / "queue.json").write_text(json.dumps({
        "schema": "repro-dispatch-queue-v1",
        "spec_fingerprint": "f" * 64,
        "cells": cells,
        "lease_ttl_seconds": ttl,
    }))
    return queue


def _mark_done(queue, index, owner, committed_at, status="ok",
               from_cache=False, generation=1):
    (queue / "done" / f"{_key(index)}.json").write_text(json.dumps({
        "key": _key(index), "owner": owner, "generation": generation,
        "status": status, "from_cache": from_cache,
        "committed_at": committed_at,
    }))


def _lease(queue, index, owner, heartbeat_at, generation=1):
    path = queue / "leases" / f"{_key(index)}.gen-{generation}.json"
    path.write_text(json.dumps({
        "key": _key(index), "owner": owner, "generation": generation}))
    os.utime(path, (heartbeat_at, heartbeat_at))
    return path


class TestQueueStatus:
    def test_live_queue(self, tmp_path):
        queue = _fake_queue(tmp_path)
        _mark_done(queue, 0, "w1", NOW - 20)
        _mark_done(queue, 1, "w2", NOW - 10)
        _lease(queue, 2, "w1", NOW - 5)
        status = queue_status(queue, clock=lambda: NOW)
        assert status["state"] == "running"
        assert status["done"] == 2 and status["pending"] == 2
        assert not status["complete"]
        # 2 commits 10s apart -> 0.1 cells/s -> 2 pending ~ 20s.
        assert abs(status["eta_seconds"] - 20.0) < 1e-9
        (lease,) = status["leases"]
        assert lease["owner"] == "w1" and not lease["expired"]
        assert status["workers"]["w1"]["heartbeat_age_seconds"] == 5.0
        text = render_queue_status(status)
        assert "state: running" in text and "eta ~20.0s" in text
        assert "live" in text

    def test_finished_queue(self, tmp_path):
        queue = _fake_queue(tmp_path, cells=3)
        _mark_done(queue, 0, "w1", NOW - 30)
        _mark_done(queue, 1, "w2", NOW - 20, from_cache=True, generation=0)
        _mark_done(queue, 2, "w2", NOW - 10, generation=2)
        status = queue_status(queue, clock=lambda: NOW)
        assert status["state"] == "complete" and status["complete"]
        assert status["ok"] == 2 and status["cache_served"] == 1
        assert status["stolen"] == 1 and status["pending"] == 0
        text = render_queue_status(status)
        assert "state: complete" in text
        assert "stolen 1" in text

    def test_stalled_queue(self, tmp_path):
        queue = _fake_queue(tmp_path, ttl=30.0)
        _mark_done(queue, 0, "w1", NOW - 200)
        _lease(queue, 1, "w1", NOW - 100)  # heartbeat long dead
        status = queue_status(queue, clock=lambda: NOW)
        assert status["state"] == "stalled"
        (lease,) = status["leases"]
        assert lease["expired"]
        text = render_queue_status(status)
        assert "state: stalled" in text
        assert "no live heartbeat" in text
        assert "EXPIRED" in text

    def test_highest_generation_wins_and_done_leases_drop(self, tmp_path):
        queue = _fake_queue(tmp_path)
        _lease(queue, 1, "w1", NOW - 100, generation=1)
        _lease(queue, 1, "w2", NOW - 2, generation=2)  # the thief, alive
        _mark_done(queue, 0, "w1", NOW - 5)
        _lease(queue, 0, "w1", NOW - 1)  # lease of a committed cell: ignored
        status = queue_status(queue, clock=lambda: NOW)
        (lease,) = status["leases"]
        assert lease["generation"] == 2 and lease["owner"] == "w2"
        assert not lease["expired"]

    def test_failed_cells_counted(self, tmp_path):
        queue = _fake_queue(tmp_path, cells=2)
        _mark_done(queue, 0, "w1", NOW - 5, status="failed")
        _mark_done(queue, 1, "w1", NOW - 4)
        status = queue_status(queue, clock=lambda: NOW)
        assert status["failed"] == 1 and status["complete"]

    def test_discover_queue_dirs(self, tmp_path):
        assert discover_queue_dirs(tmp_path) == []
        queue = _fake_queue(tmp_path)
        (tmp_path / "dispatch" / "not-a-queue").mkdir()
        assert discover_queue_dirs(tmp_path) == [queue]


class TestManifestStatus:
    def test_counts_by_status(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "spec_fingerprint": "a" * 64,
            "cells": [{"status": "ok"}, {"status": "ok"},
                      {"status": "pending"}, {"status": "failed"}],
        }))
        status = manifest_status(path)
        assert status["cells"] == 4 and status["pending"] == 1
        assert not status["complete"]
        text = render_manifest_status(status)
        assert "state: incomplete" in text and "ok 2" in text

    def test_unreadable_manifest(self, tmp_path):
        assert manifest_status(tmp_path / "nope.json") is None
