"""Timeline artifacts: canonical spans.csv and the per-worker swimlane HTML."""

from repro.telemetry import configure, reset, span
from repro.telemetry.timeline import (
    SPANS_HEADER,
    collect_events,
    render_timeline_html,
    spans_table,
    write_timeline_artifacts,
)


def _make_events(tmp_path, worker="w1"):
    configure(enabled=True, sink_dir=tmp_path, worker=worker)
    with span("sweep", {"fingerprint": "abc"}):
        with span("cell", {"platform": "ZnG", "workload": "bfs1",
                           "override": "default"}):
            with span("simulate"):
                pass
    reset()


class TestSpansTable:
    def test_rows_are_deterministic_and_relative(self, tmp_path):
        _make_events(tmp_path)
        events = collect_events([tmp_path])
        header, rows = spans_table(events)
        assert header == SPANS_HEADER
        assert len(rows) == 3
        # start_seconds is relative to the earliest span: min is exactly 0.
        starts = [row[5] for row in rows]
        assert min(starts) == 0.0
        # Two readings of the same log produce identical tables.
        assert spans_table(collect_events([tmp_path])) == (header, rows)

    def test_empty_log(self):
        assert spans_table([]) == (SPANS_HEADER, [])


class TestTimelineArtifacts:
    def test_artifacts_live_in_a_subdirectory(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        _make_events(telemetry)
        out = tmp_path / "report-out"
        written = write_timeline_artifacts([telemetry], out)
        assert set(written) == {"telemetry/spans.csv",
                                "telemetry/timeline.html"}
        # Inside telemetry/, never next to the golden-gated top-level CSVs.
        assert written["telemetry/spans.csv"].parent == out / "telemetry"
        assert list(out.glob("*.csv")) == []

    def test_no_events_writes_nothing(self, tmp_path):
        out = tmp_path / "report-out"
        assert write_timeline_artifacts([tmp_path / "missing"], out) == {}
        assert not out.exists()

    def test_html_has_one_lane_per_worker(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        _make_events(a, worker="host-1")
        _make_events(b, worker="host-2")
        html_text = render_timeline_html(collect_events([a, b]))
        assert "host-1" in html_text and "host-2" in html_text
        assert "<svg" in html_text and "Span totals" in html_text
