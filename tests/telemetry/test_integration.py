"""The PR's acceptance gates: bit-identity and the two-worker telemetry drill.

* Telemetry may never perturb results: a sweep with tracing on produces
  ``PlatformResult`` records byte-identical to one with tracing off.
* A two-worker ``repro dispatch`` fleet with ``REPRO_TELEMETRY=1`` leaves a
  schema-valid event log whose span tree covers every executed cell,
  ``repro status`` reports the queue complete, and the merged report CSVs
  byte-match a telemetry-off serial sweep.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.runner import RunManifest, SweepSpec, run_sweep
from repro.runner.dispatch import LeaseQueue, run_dispatch_worker
from repro.telemetry import configure, reset
from repro.telemetry.schema import (
    cell_coverage,
    read_events,
    validate_events_dir,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _small_spec(**kwargs):
    defaults = dict(
        platforms=["ZnG-base", "ZnG"],
        workloads=["betw-back", "bfs1"],
        scale=0.06,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults)


class TestBitIdentity:
    def test_results_identical_with_telemetry_on_and_off(self, tmp_path):
        spec = _small_spec()
        configure(enabled=True, sink_dir=tmp_path / "events", worker="w1")
        traced = run_sweep(spec, workers=1, cache=False)
        reset()
        plain = run_sweep(spec, workers=1, cache=False)

        traced_records = {run.key: run.result.to_record() for run in traced}
        plain_records = {run.key: run.result.to_record() for run in plain}
        assert traced_records == plain_records
        # And the traced run actually traced: every cell left a span.
        events = read_events(tmp_path / "events")
        assert cell_coverage(events) == {
            (cell.platform, cell.workload, cell.override_set.label)
            for cell in spec.cells()
        }

    def test_lease_steal_emits_structured_event(self, tmp_path):
        clock = [1000.0]
        spec = _small_spec()
        configure(enabled=True, sink_dir=tmp_path / "events", worker="thief")
        try:
            queue = LeaseQueue(tmp_path / "q", lease_ttl_seconds=5,
                               clock=lambda: clock[0])
            queue.ensure(spec)
            key = min(cell.cache_key() for cell in spec.cells())
            assert queue.try_claim(key, "victim") is not None
            clock[0] += 6.0  # victim never heartbeats
            lease = queue.try_claim(key, "thief")
            assert lease is not None and lease.generation == 2
        finally:
            reset()
        events = read_events(tmp_path / "events")
        (stolen,) = [e for e in events if e["name"] == "lease.stolen"]
        assert stolen["type"] == "event"
        assert stolen["attrs"]["victim_owner"] == "victim"
        assert stolen["attrs"]["victim_generation"] == 1
        assert stolen["attrs"]["thief_owner"] == "thief"
        assert stolen["attrs"]["generation"] == 2

    def test_dispatch_provenance_surfaces_remote_cache_stats(self, tmp_path):
        from repro.analysis.reporting import result_provenance
        from repro.runner import merge_manifests
        from repro.runner.cache_remote import RemoteResultCache

        spec = _small_spec()
        cache = RemoteResultCache("http://127.0.0.1:1",  # nothing listens
                                  local_root=tmp_path,
                                  timeout_seconds=0.05)
        report = run_dispatch_worker(spec, cache=cache, owner="w1")
        assert report.complete
        manifest = RunManifest.load(report.manifest_path)
        remote = manifest.dispatch["remote_cache"]
        assert remote["reported_by"] == "w1"
        assert remote["remote_errors"] > 0 and remote["degraded"]
        provenance = result_provenance(
            merge_manifests([report.manifest_path]), [manifest])
        (line,) = [v for k, v in provenance.items()
                   if k.startswith("remote-cache")]
        assert "DEGRADED" in line and "http://127.0.0.1:1" in line


class TestSweepCliTelemetry:
    def test_sweep_pins_the_sink_to_a_fresh_cache_dir(
            self, tmp_path, monkeypatch, capsys):
        """Regression: an empty LocalResultCache is falsy (``__len__``), so
        a truthiness check on ``runner.cache`` used to skip the sink pin and
        the events silently landed in the cwd default instead."""
        from repro.__main__ import main
        from repro.telemetry import ENV_FLAG

        monkeypatch.setenv(ENV_FLAG, "1")
        monkeypatch.chdir(tmp_path)  # a cwd-default leak would be visible
        cache_dir = tmp_path / "cache"
        assert main([
            "sweep", "--platforms", "ZnG-base", "--workloads", "betw-back",
            "--workers", "1", "--scale", "0.05", "--warps", "2",
            "--cache-dir", str(cache_dir),
            "--manifest", str(cache_dir / "manifest.json"),
        ]) == 0
        events = read_events(cache_dir / "telemetry")
        assert cell_coverage(events) == {("ZnG-base", "betw-back", "default")}
        assert not (tmp_path / ".repro-cache" / "telemetry").exists()

        # With no dispatch queue, status auto-discovers manifest*.json.
        capsys.readouterr()
        assert main(["status", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out and "state: complete" in out


class TestStatusCli:
    def test_status_on_a_finished_queue(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = _small_spec()
        report = run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        assert report.complete
        assert main(["status", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "state: complete" in out
        assert f"done {len(spec)}" in out

    def test_status_json_snapshot(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = _small_spec()
        run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        assert main(["status", "--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (queue,) = payload["queues"]
        assert queue["complete"] and queue["state"] == "complete"
        assert queue["spec_fingerprint"] == spec.fingerprint()

    def test_status_validate_gates_the_event_log(self, tmp_path, capsys):
        from repro.__main__ import main

        telemetry = tmp_path / "telemetry"
        telemetry.mkdir(parents=True)
        configure(enabled=True, sink_dir=telemetry, worker="w1")
        from repro.telemetry import event

        event("ping")
        reset()
        assert main(["status", "--cache-dir", str(tmp_path),
                     "--validate"]) == 0
        assert "1 records" in capsys.readouterr().out

        (telemetry / "events-h-2.jsonl").write_text("not json\n")
        assert main(["status", "--cache-dir", str(tmp_path),
                     "--validate"]) == 1
        assert "TELEMETRY VIOLATION" in capsys.readouterr().out


class TestTwoWorkerTelemetryAcceptance:
    """A 2-worker fleet with REPRO_TELEMETRY=1, checked end to end."""

    def test_fleet_run_is_traced_and_byte_identical(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.analysis.reporting import (
            compare_csv_dirs,
            report_from_manifests,
            write_report,
        )

        cache_dir = tmp_path / "cache"
        # Must match the CLI flags below exactly (the dispatch CLI has no
        # --mem-insts flag, so the spec keeps the 64 default).
        spec = _small_spec(memory_instructions_per_warp=64)
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_REPO_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        env["REPRO_TELEMETRY"] = "1"
        env.pop("REPRO_TELEMETRY_DIR", None)
        env.pop("REPRO_TELEMETRY_WORKER", None)
        argv = [
            sys.executable, "-m", "repro", "dispatch",
            "--platforms", "ZnG-base,ZnG",
            "--workloads", "betw-back,bfs1",
            "--scale", "0.06", "--warps", "2",
            "--cache-dir", str(cache_dir),
            "--lease-ttl", "10", "--poll-interval", "0.1",
        ]
        workers = [
            subprocess.Popen(
                argv + ["--owner", f"worker-{i}"],
                cwd=_REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            for i in (1, 2)
        ]
        for proc in workers:
            out, _ = proc.communicate(timeout=600)
            assert proc.returncode == 0, f"worker failed:\n{out}"

        # The CLI's spec must be the in-test spec (queue dir pins it).
        queue_root = cache_dir / "dispatch" / spec.fingerprint()[:16]
        assert queue_root.is_dir(), "CLI flags diverged from the test spec"

        # 1. Schema-valid event log whose span tree covers every cell.
        telemetry_dir = cache_dir / "telemetry"
        count, problems = validate_events_dir(telemetry_dir)
        assert problems == [], "\n".join(problems)
        assert count > 0
        events = read_events(telemetry_dir)
        # The cells that were *executed* (not cache-served) left cell spans;
        # with a cold cache that is every cell of the grid.
        expected = {(c.platform, c.workload, c.override_set.label)
                    for c in spec.cells()}
        assert cell_coverage(events) == expected
        workers_seen = {e["worker"] for e in events}
        assert workers_seen <= {"worker-1", "worker-2"}
        # Both processes wrote their own files; none interleaved.
        assert len(list(telemetry_dir.glob("events*.jsonl"))) >= 1

        # 2. repro status reports the queue complete.
        assert main(["status", "--cache-dir", str(cache_dir),
                     "--validate"]) == 0
        status_out = capsys.readouterr().out
        assert "state: complete" in status_out
        assert "0 schema violation(s)" in status_out

        # 3. Report CSVs byte-identical to a telemetry-off serial sweep,
        #    with the timeline artifacts tucked into telemetry/.
        fleet_out = tmp_path / "fleet-report"
        written = report_from_manifests(
            [cache_dir / "manifest.json"], fleet_out,
            plots=False, html_report=False)
        assert "telemetry/timeline.html" in written
        serial_out = tmp_path / "serial-report"
        serial = run_sweep(spec, workers=1, cache=False)
        write_report(serial, serial_out, plots=False, html_report=False)
        drift = compare_csv_dirs(fleet_out, serial_out)
        assert not drift, "\n".join(drift)
