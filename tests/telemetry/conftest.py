"""Telemetry tests run with a hermetic tracer: no env leakage, no sink reuse.

Every test starts from a fully reset tracer and a scrubbed environment, and
leaves the same behind — telemetry state is process-global, so a leaked
override or open sink fd would couple unrelated tests.
"""

from __future__ import annotations

import pytest

from repro.telemetry import ENV_DIR, ENV_FLAG, ENV_WORKER, reset


@pytest.fixture(autouse=True)
def hermetic_tracer(monkeypatch):
    import os

    for variable in (ENV_FLAG, ENV_DIR, ENV_WORKER):
        monkeypatch.delenv(variable, raising=False)
    reset()
    yield
    # Tests that drive the CLI can pin ENV_DIR via ensure_sink_env — an
    # os.environ write monkeypatch never saw, so scrub it explicitly.
    for variable in (ENV_FLAG, ENV_DIR, ENV_WORKER):
        os.environ.pop(variable, None)
    reset()
