"""Tracer core: spans, counters, schema validity, and the free disabled path."""

import json
import os
import tracemalloc

from repro.telemetry import (
    NULL_SPAN,
    configure,
    counter,
    current_span_id,
    enabled,
    event,
    reset,
    span,
)
from repro.telemetry import core
from repro.telemetry.schema import (
    TELEMETRY_SCHEMA,
    cell_coverage,
    read_events,
    validate_events_dir,
    validate_record,
)


class TestEnabledTracer:
    def test_nested_spans_record_parentage(self, tmp_path):
        configure(enabled=True, sink_dir=tmp_path, worker="w1")
        with span("sweep", {"fingerprint": "abc"}):
            with span("cell", {"platform": "ZnG", "workload": "bfs1",
                               "override": "default"}):
                counter("l2.hits", 42.0)
            event("lease.stolen", {"victim_owner": "w0"})
        reset()

        count, problems = validate_events_dir(tmp_path)
        assert problems == []
        assert count == 4
        events = read_events(tmp_path)
        by_name = {record["name"]: record for record in events}
        sweep = by_name["sweep"]
        cell = by_name["cell"]
        assert sweep["parent_id"] is None
        assert cell["parent_id"] == sweep["span_id"]
        assert by_name["l2.hits"]["parent_id"] == cell["span_id"]
        # The event fired after the cell span closed, inside the sweep span.
        assert by_name["lease.stolen"]["parent_id"] == sweep["span_id"]
        assert all(record["worker"] == "w1" for record in events)
        assert all(record["schema"] == TELEMETRY_SCHEMA for record in events)
        assert cell_coverage(events) == {("ZnG", "bfs1", "default")}

    def test_span_status_reflects_exceptions(self, tmp_path):
        configure(enabled=True, sink_dir=tmp_path)
        try:
            with span("boom"):
                raise RuntimeError("kaboom")
        except RuntimeError:
            pass
        reset()
        (record,) = read_events(tmp_path)
        assert record["status"] == "error"
        assert record["duration_seconds"] >= 0

    def test_records_are_one_json_line_each(self, tmp_path):
        configure(enabled=True, sink_dir=tmp_path, worker="w1")
        for index in range(10):
            counter("c", float(index))
        reset()
        (path,) = sorted(tmp_path.glob("events*.jsonl"))
        lines = path.read_text().splitlines()
        assert len(lines) == 10
        assert [json.loads(line)["value"] for line in lines] == [
            float(i) for i in range(10)]

    def test_sink_file_is_per_process(self, tmp_path):
        configure(enabled=True, sink_dir=tmp_path)
        event("ping")
        reset()
        (path,) = sorted(tmp_path.glob("events*.jsonl"))
        assert f"-{os.getpid()}.jsonl" in path.name

    def test_current_span_id_tracks_the_stack(self, tmp_path):
        configure(enabled=True, sink_dir=tmp_path)
        assert current_span_id() is None
        with span("outer") as outer:
            assert current_span_id() == outer.span_id
        assert current_span_id() is None
        reset()


class TestDisabledTracer:
    def test_disabled_emits_nothing(self, tmp_path):
        configure(enabled=False, sink_dir=tmp_path)
        with span("sweep"):
            counter("c", 1.0)
            event("e")
        assert list(tmp_path.glob("events*.jsonl")) == []

    def test_disabled_span_is_the_shared_singleton(self):
        configure(enabled=False)
        assert span("a") is NULL_SPAN
        assert span("b") is NULL_SPAN

    def test_env_flag_gates(self, monkeypatch):
        monkeypatch.setenv(core.ENV_FLAG, "1")
        assert enabled()
        monkeypatch.setenv(core.ENV_FLAG, "0")
        assert not enabled()
        monkeypatch.delenv(core.ENV_FLAG)
        assert not enabled()

    def test_disabled_hot_path_is_allocation_free(self):
        configure(enabled=False)
        # Warm every code path (and the env memo) before tracing.
        for _ in range(3):
            with span("hot"):
                pass
            counter("c", 1.0)
            event("e")
        tracemalloc.start()
        try:
            for _ in range(2000):
                with span("hot"):
                    pass
                counter("c", 1.0)
                event("e")
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        core_file = core.__file__
        spent = sum(
            stat.size for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename == core_file
        )
        assert spent == 0, f"disabled tracer allocated {spent} bytes"


class TestSchemaValidator:
    def test_rejects_malformed_records(self):
        assert validate_record([]) == ["record: not a JSON object"]
        bad = {"schema": "nope", "type": "span", "name": "", "ts": float("nan"),
               "pid": "x", "host": "h", "worker": "w", "attrs": [],
               "span_id": "", "duration_seconds": -1, "status": "meh"}
        problems = validate_record(bad)
        assert any("schema" in p for p in problems)
        assert any("'ts'" in p for p in problems)
        assert any("span_id" in p for p in problems)
        assert any("duration_seconds" in p for p in problems)
        assert any("status" in p for p in problems)

    def test_accepts_real_records(self, tmp_path):
        configure(enabled=True, sink_dir=tmp_path, worker="w1")
        with span("s", {"k": "v", "n": 1, "f": 0.5, "b": True, "z": None}):
            pass
        reset()
        (record,) = read_events(tmp_path)
        assert validate_record(record) == []

    def test_validator_flags_corrupt_lines(self, tmp_path):
        (tmp_path / "events-h-1.jsonl").write_text('{"broken\n\n{}\n')
        count, problems = validate_events_dir(tmp_path)
        assert count == 1  # only the parseable (but invalid) line counts
        assert any("unparseable" in p for p in problems)
        assert any("blank line" in p for p in problems)
