"""Shared fixtures for the test suite.

Simulation-scale knobs are kept deliberately small here: the unit tests
exercise mechanisms, not fidelity, and the full-fidelity runs live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig, ZNANDConfig, default_config
from repro.workloads.multiapp import MultiAppWorkload, build_mix
from repro.workloads.generators import generate_workload
from repro.workloads.suites import workload_by_name


@pytest.fixture(scope="session")
def config() -> PlatformConfig:
    """The Table I configuration."""
    return default_config()


@pytest.fixture(scope="session")
def small_znand_config() -> ZNANDConfig:
    """A reduced flash geometry that keeps unit tests fast."""
    return ZNANDConfig(
        channels=4,
        dies_per_package=2,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=16,
    )


@pytest.fixture(scope="session")
def tiny_mix() -> MultiAppWorkload:
    """A very small betw-back co-run used by platform integration tests."""
    return build_mix(
        "betw", "back", scale=0.2, warps_per_sm=2, memory_instructions_per_warp=24
    )


@pytest.fixture(scope="session")
def small_mix() -> MultiAppWorkload:
    """A slightly larger mix for end-to-end ordering checks."""
    return build_mix(
        "betw", "back", scale=0.4, warps_per_sm=4, memory_instructions_per_warp=64
    )


@pytest.fixture(scope="session")
def read_heavy_trace():
    """A read-only single-application trace (deg: read ratio 1.0)."""
    return generate_workload(
        workload_by_name("deg"), scale=0.2, warps_per_sm=2, memory_instructions_per_warp=24
    )
