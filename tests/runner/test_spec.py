"""Tests for sweep specifications, override application and cell hashing."""

import pytest

from repro.config import default_config
from repro.configspace import (
    CanonicalEncodingError,
    ConfigPathError,
    ConfigValueError,
)
from repro.runner import OverrideSet, SweepSpec, apply_overrides, cell_seed


class TestApplyOverrides:
    def test_nested_override_applies(self, config):
        out = apply_overrides(config, {"register_cache.registers_per_plane": 16})
        assert out.register_cache.registers_per_plane == 16

    def test_original_config_untouched(self, config):
        before = config.znand.channels
        apply_overrides(config, {"znand.channels": before + 1})
        assert config.znand.channels == before

    def test_multiple_overrides(self, config):
        out = apply_overrides(
            config,
            {"znand.channels": 2, "prefetch.prefetch_threshold": 3},
        )
        assert out.znand.channels == 2
        assert out.prefetch.prefetch_threshold == 3

    def test_unknown_field_raises(self, config):
        with pytest.raises(KeyError):
            apply_overrides(config, {"znand.not_a_field": 1})

    def test_unknown_subtree_raises(self, config):
        with pytest.raises(KeyError):
            apply_overrides(config, {"nonsense.field": 1})

    def test_property_path_raises_clear_error(self, config):
        # znand.total_planes is derived from channels x packages x dies x
        # planes; overriding it must explain that, not report "no field".
        with pytest.raises(ConfigPathError, match="derived property"):
            apply_overrides(config, {"znand.total_planes": 4096})

    def test_type_mismatch_rejected(self, config):
        with pytest.raises(ConfigValueError, match="expects an int"):
            apply_overrides(config, {"znand.channels": "many"})

    def test_cli_string_values_coerced(self, config):
        out = apply_overrides(config, {"znand.channels": "8"})
        assert out.znand.channels == 8

    def test_invariant_violation_rejected(self, config):
        with pytest.raises(ConfigValueError, match="l1-geometry"):
            apply_overrides(config, {"gpu.l1_sets": 16})


class TestSweepSpec:
    def test_grid_expansion(self):
        spec = SweepSpec.create(
            platforms=["ZnG", "ZnG-base"],
            workloads=["betw-back", "bfs1"],
            overrides={"a": {"znand.channels": 2}, "b": {"znand.channels": 4}},
        )
        cells = spec.cells()
        assert len(cells) == len(spec) == 2 * 2 * 2
        labels = {cell.label for cell in cells}
        assert "ZnG/betw-back/a" in labels

    def test_group_token_expansion(self):
        spec = SweepSpec.create(platforms=["ZnG"], workloads=["mixes"])
        assert len(spec.workloads) == 12
        assert "betw-back" in spec.workloads

    def test_invalid_workload_rejected(self):
        with pytest.raises(KeyError):
            SweepSpec.create(platforms=["ZnG"], workloads=["nosuch"])

    def test_seed_depends_on_workload_not_platform(self):
        spec = SweepSpec.create(
            platforms=["ZnG", "GDDR5"], workloads=["betw-back", "bfs1-gaus"]
        )
        by_workload = {}
        for cell in spec.cells():
            by_workload.setdefault(cell.workload, set()).add(cell.seed)
        # One seed per workload, shared by every platform...
        assert all(len(seeds) == 1 for seeds in by_workload.values())
        # ...and different workloads get different seeds.
        assert len({next(iter(s)) for s in by_workload.values()}) == 2

    def test_cell_seed_deterministic(self):
        assert cell_seed(1, "betw-back") == cell_seed(1, "betw-back")
        assert cell_seed(1, "betw-back") != cell_seed(2, "betw-back")

    def test_empty_override_mapping_labels_as_default(self):
        # An empty mapping carries no overrides: it must label (and cache)
        # exactly like the no-overrides spec, not as a phantom "override".
        spec = SweepSpec.create(
            platforms=["ZnG"], workloads=["betw-back"], overrides={})
        assert [o.label for o in spec.overrides] == ["default"]
        baseline = SweepSpec.create(platforms=["ZnG"], workloads=["betw-back"])
        assert spec == baseline
        assert spec.cells()[0].label == "ZnG/betw-back"
        assert spec.cells()[0].cache_key() == baseline.cells()[0].cache_key()

    def test_create_coerces_override_values(self):
        spec = SweepSpec.create(
            platforms=["ZnG"], workloads=["betw-back"],
            overrides={"wide": {"znand.channels": "32"}},
        )
        assert spec.overrides[0].overrides == (("znand.channels", 32),)

    def test_create_rejects_bad_override_values(self):
        with pytest.raises(ConfigValueError):
            SweepSpec.create(
                platforms=["ZnG"], workloads=["betw-back"],
                overrides={"bad": {"znand.channels": "many"}},
            )

    def test_create_rejects_property_override_paths(self):
        with pytest.raises(ConfigPathError):
            SweepSpec.create(
                platforms=["ZnG"], workloads=["betw-back"],
                overrides={"bad": {"znand.total_planes": 1}},
            )


class TestCacheKey:
    def _cell(self, **kwargs):
        spec = SweepSpec.create(
            platforms=[kwargs.pop("platform", "ZnG")],
            workloads=[kwargs.pop("workload", "betw-back")],
            **kwargs,
        )
        return spec.cells()[0]

    def test_stable_across_processes_inputs(self):
        assert self._cell().cache_key() == self._cell().cache_key()

    def test_distinguishes_platform_workload_scale_and_config(self):
        base = self._cell().cache_key()
        assert self._cell(platform="ZnG-base").cache_key() != base
        assert self._cell(workload="bfs1-gaus").cache_key() != base
        assert self._cell(scale=0.5).cache_key() != base
        assert self._cell(overrides={"znand.channels": 2}).cache_key() != base

    def test_base_config_changes_key(self):
        custom = default_config().copy()
        custom.znand = type(custom.znand)(channels=2)
        assert self._cell(base_config=custom).cache_key() != self._cell().cache_key()

    def test_descriptor_hashes_the_platform_resolved_config(self):
        # The cache key must cover the platform's pinned layer, not just
        # base + overrides: ZnG pins the mesh network and copies the
        # write-cache register knob into znand before running.
        descriptor = self._cell(
            overrides={"register_cache.registers_per_plane": 16}).descriptor()
        assert descriptor["config"]["znand"]["flash_network_type"] == "mesh"
        assert descriptor["config"]["znand"]["registers_per_plane"] == 16

    def test_editing_a_platform_layer_changes_the_key(self, monkeypatch):
        # A maintainer changing a platform's declarative delta must miss the
        # cache, exactly like a changed Table I default.
        from repro.configspace import ConfigLayer
        from repro.configspace import layers as layers_module

        before = self._cell().cache_key()
        monkeypatch.setitem(
            layers_module.PLATFORM_LAYERS, "ZnG",
            ConfigLayer.create(
                "platform:ZnG", "platform",
                {"znand.flash_network_type": "mesh",
                 "znand.registers_per_plane": 4}, pinned=True),
        )
        assert self._cell().cache_key() != before

    def test_coerced_values_hash_bit_identically(self):
        # A CLI string, an int and a float-typed equivalent must produce the
        # same canonical descriptor, hence the same cache key.
        as_string = self._cell(overrides={"znand.channels": "32"}).cache_key()
        as_int = self._cell(overrides={"znand.channels": 32}).cache_key()
        assert as_string == as_int
        lat_int = self._cell(
            overrides={"znand.read_latency_us": 2}).cache_key()
        lat_float = self._cell(
            overrides={"znand.read_latency_us": 2.0}).cache_key()
        assert lat_int == lat_float

    def test_unencodable_override_value_raises(self):
        # The v3 canonical encoder must raise instead of stringifying a
        # value without an exact encoding into a potentially aliasing key.
        # NaN passes float coercion but json.dumps would happily emit the
        # non-canonical literal "NaN" — exactly the silent-aliasing class the
        # strict encoder closes.
        cell = self._cell(
            overrides={"znand.read_latency_us": float("nan")})
        with pytest.raises(CanonicalEncodingError, match="non-finite"):
            cell.cache_key()

    def test_arbitrary_object_override_raises(self):
        # An object smuggled past create() dies at schema validation when the
        # cell resolves its config — never silently stringified.
        from dataclasses import replace as dc_replace

        poisoned = dc_replace(
            self._cell(),
            override_set=OverrideSet("bad", (("znand.channels", object()),)),
        )
        with pytest.raises(ConfigValueError):
            poisoned.cache_key()


class TestOverrideSet:
    def test_create_sorts_items(self):
        a = OverrideSet.create("x", {"b.c": 1, "a.b": 2})
        b = OverrideSet.create("x", {"a.b": 2, "b.c": 1})
        assert a == b


class TestWorkloadFingerprintKeys:
    """Cache keys and trace-memo keys must track the *resolved* workload."""

    def _cell(self, workload, **kwargs):
        spec = SweepSpec.create(platforms=["ZnG"], workloads=[workload],
                                scale=0.1, **kwargs)
        return spec.cells()[0]

    def test_descriptor_carries_the_workload_fingerprint(self):
        descriptor = self._cell("betw").descriptor()
        assert descriptor["workload_fingerprint"] == (
            self._cell("betw").workload_fingerprint())

    def test_family_param_changes_cache_and_trace_keys(self):
        base = self._cell("kv-lookup")
        skewed = self._cell("kv-lookup:zipf=1.1")
        assert base.cache_key() != skewed.cache_key()
        assert base.trace_key() != skewed.trace_key()

    def test_default_spelling_aliases_to_the_default_cell(self):
        # Same resolved parameters -> same canonical token -> same keys:
        # the *benign* direction of aliasing.
        explicit = self._cell("kv-lookup:zipf=0.99")
        assert explicit.cache_key() == self._cell("kv-lookup").cache_key()

    def test_table2_apps_accept_parameter_overrides(self):
        assert (self._cell("betw").cache_key()
                != self._cell("betw:zipf_alpha=1.0").cache_key())

    def test_mix_fingerprints_feed_the_key(self):
        assert (self._cell("betw-back").cache_key()
                != self._cell("betw-gaus").cache_key())
