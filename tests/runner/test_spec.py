"""Tests for sweep specifications, override application and cell hashing."""

import pytest

from repro.config import default_config
from repro.runner import OverrideSet, SweepSpec, apply_overrides, cell_seed


class TestApplyOverrides:
    def test_nested_override_applies(self, config):
        out = apply_overrides(config, {"register_cache.registers_per_plane": 16})
        assert out.register_cache.registers_per_plane == 16

    def test_original_config_untouched(self, config):
        before = config.znand.channels
        apply_overrides(config, {"znand.channels": before + 1})
        assert config.znand.channels == before

    def test_multiple_overrides(self, config):
        out = apply_overrides(
            config,
            {"znand.channels": 2, "prefetch.prefetch_threshold": 3},
        )
        assert out.znand.channels == 2
        assert out.prefetch.prefetch_threshold == 3

    def test_unknown_field_raises(self, config):
        with pytest.raises(KeyError):
            apply_overrides(config, {"znand.not_a_field": 1})

    def test_unknown_subtree_raises(self, config):
        with pytest.raises(KeyError):
            apply_overrides(config, {"nonsense.field": 1})


class TestSweepSpec:
    def test_grid_expansion(self):
        spec = SweepSpec.create(
            platforms=["ZnG", "ZnG-base"],
            workloads=["betw-back", "bfs1"],
            overrides={"a": {"znand.channels": 2}, "b": {"znand.channels": 4}},
        )
        cells = spec.cells()
        assert len(cells) == len(spec) == 2 * 2 * 2
        labels = {cell.label for cell in cells}
        assert "ZnG/betw-back/a" in labels

    def test_group_token_expansion(self):
        spec = SweepSpec.create(platforms=["ZnG"], workloads=["mixes"])
        assert len(spec.workloads) == 12
        assert "betw-back" in spec.workloads

    def test_invalid_workload_rejected(self):
        with pytest.raises(KeyError):
            SweepSpec.create(platforms=["ZnG"], workloads=["nosuch"])

    def test_seed_depends_on_workload_not_platform(self):
        spec = SweepSpec.create(
            platforms=["ZnG", "GDDR5"], workloads=["betw-back", "bfs1-gaus"]
        )
        by_workload = {}
        for cell in spec.cells():
            by_workload.setdefault(cell.workload, set()).add(cell.seed)
        # One seed per workload, shared by every platform...
        assert all(len(seeds) == 1 for seeds in by_workload.values())
        # ...and different workloads get different seeds.
        assert len({next(iter(s)) for s in by_workload.values()}) == 2

    def test_cell_seed_deterministic(self):
        assert cell_seed(1, "betw-back") == cell_seed(1, "betw-back")
        assert cell_seed(1, "betw-back") != cell_seed(2, "betw-back")


class TestCacheKey:
    def _cell(self, **kwargs):
        spec = SweepSpec.create(
            platforms=[kwargs.pop("platform", "ZnG")],
            workloads=[kwargs.pop("workload", "betw-back")],
            **kwargs,
        )
        return spec.cells()[0]

    def test_stable_across_processes_inputs(self):
        assert self._cell().cache_key() == self._cell().cache_key()

    def test_distinguishes_platform_workload_scale_and_config(self):
        base = self._cell().cache_key()
        assert self._cell(platform="ZnG-base").cache_key() != base
        assert self._cell(workload="bfs1-gaus").cache_key() != base
        assert self._cell(scale=0.5).cache_key() != base
        assert self._cell(overrides={"znand.channels": 2}).cache_key() != base

    def test_base_config_changes_key(self):
        custom = default_config().copy()
        custom.znand = type(custom.znand)(channels=2)
        assert self._cell(base_config=custom).cache_key() != self._cell().cache_key()


class TestOverrideSet:
    def test_create_sorts_items(self):
        a = OverrideSet.create("x", {"b.c": 1, "a.b": 2})
        b = OverrideSet.create("x", {"a.b": 2, "b.c": 1})
        assert a == b
