"""Dispatch fabric: lease-queue workers, manifests, and the kill-a-worker gate.

The acceptance test at the bottom is the PR's contract: three ``repro
dispatch`` worker processes share one queue, one of them is SIGKILLed while
holding a lease it never heartbeats, the survivors steal the expired lease,
the grid completes, and the merged report CSVs are byte-identical to the
committed serial-sweep goldens in ``tests/data/report/``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runner import (
    DispatchError,
    DispatchWorker,
    RunManifest,
    SweepSpec,
    merge_manifests,
    run_dispatch_worker,
    run_sweep,
)
from repro.runner.dispatch import LeaseQueue

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _small_spec(**kwargs):
    defaults = dict(
        platforms=["ZnG-base", "ZnG"],
        workloads=["betw-back", "bfs1"],
        scale=0.06,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults)


class TestDispatchWorker:
    def test_single_worker_completes_grid(self, tmp_path):
        spec = _small_spec()
        report = run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        assert report.complete
        assert report.executed == len(spec)
        assert report.cache_served == 0 and report.stolen == 0
        assert not report.failed
        assert report.manifest_path is not None and report.manifest_path.exists()

    def test_manifest_carries_dispatch_provenance(self, tmp_path):
        spec = _small_spec()
        report = run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        manifest = RunManifest.load(report.manifest_path)
        assert manifest.dispatch is not None
        assert manifest.dispatch["schema"] == "repro-dispatch-v1"
        assert manifest.dispatch["workers"] == ["w1"]
        assert manifest.dispatch["executed"] == len(spec)
        assert manifest.dispatch["stolen_leases"] == 0
        # And the block survives a round-trip through provenance().
        assert manifest.provenance()["dispatch"]["workers"] == ["w1"]

    def test_second_worker_is_idempotent(self, tmp_path):
        spec = _small_spec()
        first = run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        second = run_dispatch_worker(spec, cache=tmp_path, owner="w2")
        assert second.complete
        assert second.executed == 0 and second.cache_served == 0
        # The finalized manifest is a pure function of the done markers:
        # whoever rewrites it produces identical bytes.
        assert first.manifest_path == second.manifest_path

    def test_warm_cache_is_served_without_leasing(self, tmp_path):
        spec = _small_spec()
        run_sweep(spec, workers=1, cache=tmp_path)
        report = run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        assert report.complete
        assert report.executed == 0
        assert report.cache_served == len(spec)
        manifest = RunManifest.load(report.manifest_path)
        assert manifest.dispatch["cache_served"] == len(spec)
        # Cache-served commits never needed a lease: generation 0 throughout.
        queue = DispatchWorker(spec, cache=tmp_path).queue
        for cell in spec.cells():
            assert queue.done_record(cell.cache_key())["generation"] == 0

    def test_dispatch_grid_matches_serial_sweep(self, tmp_path):
        """The completed grid is bit-identical to a plain serial sweep."""
        spec = _small_spec()
        report = run_dispatch_worker(spec, cache=tmp_path / "d", owner="w1")
        merged = merge_manifests([report.manifest_path])
        serial = run_sweep(spec, workers=1, cache=False)
        for metric in ("ipc", "cycles"):
            assert merged.table(metric) == serial.table(metric)

    def test_max_cells_budget_stops_early(self, tmp_path):
        spec = _small_spec()
        report = run_dispatch_worker(
            spec, cache=tmp_path, owner="w1", max_cells=1)
        assert report.committed == 1
        assert not report.complete
        finisher = run_dispatch_worker(spec, cache=tmp_path, owner="w2")
        assert finisher.complete
        assert finisher.executed == len(spec) - 1

    def test_failed_cell_is_committed_and_reported(self, tmp_path, monkeypatch):
        import repro.runner.dispatch as dispatch_mod

        spec = _small_spec()
        real = dispatch_mod._execute_cell_timed
        doomed = min(cell.cache_key() for cell in spec.cells())

        def flaky(cell):
            if cell.cache_key() == doomed:
                raise RuntimeError("injected cell failure")
            return real(cell)

        monkeypatch.setattr(dispatch_mod, "_execute_cell_timed", flaky)
        report = run_dispatch_worker(spec, cache=tmp_path, owner="w1")
        assert report.complete  # failure is a committed outcome, not a hang
        assert len(report.failed) == 1
        manifest = RunManifest.load(report.manifest_path)
        assert manifest.counts().get("failed") == 1
        assert manifest.dispatch["failed"] == 1
        [failed_cell] = [c for c in manifest.cells if c.status == "failed"]
        assert "injected cell failure" in failed_cell.error

    def test_dispatch_requires_a_cache(self):
        with pytest.raises(DispatchError):
            DispatchWorker(_small_spec(), cache=False)

    def test_queue_rejects_a_different_spec(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q", lease_ttl_seconds=5)
        queue.ensure(_small_spec())
        with pytest.raises(DispatchError, match="one queue dir per sweep"):
            queue.ensure(_small_spec(seed=2))


class TestStolenLease:
    def test_expired_lease_is_stolen_and_grid_completes(self, tmp_path):
        """In-process fault injection: a claimed-then-abandoned lease."""
        clock = [1000.0]
        spec = _small_spec()
        worker = DispatchWorker(
            spec, cache=tmp_path, owner="thief", lease_ttl_seconds=5,
            poll_interval_seconds=0.01, clock=lambda: clock[0])
        worker.queue.ensure(spec)
        victim_key = min(cell.cache_key() for cell in spec.cells())
        lease = worker.queue.try_claim(victim_key, "victim")
        assert lease is not None and lease.generation == 1
        clock[0] += 6.0  # the victim never heartbeats; its lease expires
        report = worker.run()
        assert report.complete
        assert report.stolen == 1
        manifest = RunManifest.load(report.manifest_path)
        assert manifest.dispatch["stolen_leases"] == 1
        assert worker.queue.done_record(victim_key)["generation"] == 2


def _dispatch_argv(cache_dir, owner, extra=()):
    return [
        sys.executable, "-m", "repro", "dispatch",
        "--preset", "fig10", "--scale", "0.1",
        "--cache-dir", str(cache_dir),
        "--lease-ttl", "3", "--poll-interval", "0.1",
        "--owner", owner,
        *extra,
    ]


def _subprocess_env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestKillAWorkerAcceptance:
    """The PR's acceptance gate, exactly as the CI job runs it."""

    def test_sigkilled_worker_only_delays_its_cells(self, tmp_path):
        from repro.analysis.reporting import (
            compare_csv_dirs,
            default_golden_dir,
            golden_spec,
            write_report,
        )

        cache_dir = tmp_path / "cache"
        spec = golden_spec()  # CI's fig10 grid at scale 0.1 — the golden grid
        queue_root = cache_dir / "dispatch" / spec.fingerprint()[:16]
        env = _subprocess_env()

        # Worker 1 is the victim: it claims one lease, then stalls without
        # heartbeating until we SIGKILL it — a worker that died holding work.
        victim = subprocess.Popen(
            _dispatch_argv(cache_dir, "victim",
                           extra=("--stall-after-claim", "600")),
            cwd=_REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            leases_dir = queue_root / "leases"
            while time.monotonic() < deadline:
                if leases_dir.is_dir() and any(leases_dir.iterdir()):
                    break
                if victim.poll() is not None:
                    pytest.fail("victim worker exited before claiming a lease")
                time.sleep(0.05)
            else:
                pytest.fail("victim worker never claimed a lease")
            victim.send_signal(signal.SIGKILL)
        finally:
            if victim.poll() is None:
                victim.kill()
            victim.wait()

        # Workers 2 and 3 must steal the orphaned lease and close the grid.
        survivors = [
            subprocess.Popen(
                _dispatch_argv(cache_dir, f"survivor-{i}"),
                cwd=_REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            for i in (1, 2)
        ]
        outputs = []
        for proc in survivors:
            out, _ = proc.communicate(timeout=600)
            outputs.append(out)
            assert proc.returncode == 0, f"survivor failed:\n{out}"

        manifest_path = cache_dir / "manifest.json"
        assert manifest_path.exists(), "no worker finalized the manifest"
        manifest = RunManifest.load(manifest_path)
        counts = manifest.counts()
        assert counts["ok"] == len(spec)
        assert counts.get("failed", 0) == 0 and counts.get("pending", 0) == 0
        dispatch = manifest.dispatch
        assert dispatch is not None
        assert dispatch["stolen_leases"] >= 1, (
            "the SIGKILLed worker's lease was never stolen: "
            + json.dumps(dispatch))
        # Survivors did all committed work; the victim committed nothing.
        assert set(dispatch["workers"]) <= {"survivor-1", "survivor-2"}

        # The distributed, partially-stolen run reproduces the committed
        # serial-sweep goldens byte for byte.
        merged = merge_manifests([manifest_path])
        derived = tmp_path / "derived"
        write_report(merged, derived, plots=False, html_report=False)
        drift = compare_csv_dirs(derived, default_golden_dir())
        assert not drift, "dispatch run drifted from goldens:\n" + "\n".join(drift)
