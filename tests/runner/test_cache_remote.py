"""Remote result cache: HTTP round-trip, read-through, validation, degradation.

Every test runs the in-repo reference server (``repro.runner.cache_server``)
on an ephemeral loopback port — no network beyond 127.0.0.1, no external
processes.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.runner import (
    LocalResultCache,
    RemoteResultCache,
    SweepSpec,
    open_cache,
    run_sweep,
)
from repro.runner.cache_server import start_cache_server

_KEY = "0" * 64


def _small_spec(**kwargs):
    defaults = dict(
        platforms=["ZnG-base"],
        workloads=["betw-back"],
        scale=0.05,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults)


@pytest.fixture()
def server(tmp_path):
    server, _thread = start_cache_server(tmp_path / "server-root")
    yield server
    server.shutdown()


def _http(method, url, data=None):
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=5) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestCacheServer:
    def test_healthz_and_stats(self, server):
        status, body = _http("GET", f"{server.url}/healthz")
        assert status == 200 and body == b"ok"
        status, body = _http("GET", f"{server.url}/stats")
        assert status == 200
        assert json.loads(body)["entries"] == 0

    def test_get_unknown_key_is_404(self, server):
        status, _ = _http("GET", f"{server.url}/cache/{_KEY}")
        assert status == 404

    def test_malformed_keys_are_rejected_without_touching_disk(self, server):
        for bad in ("..%2F..%2Fetc%2Fpasswd", "short", "Z" * 64):
            status, _ = _http("GET", f"{server.url}/cache/{bad}")
            assert status in (400, 404)
            status, _ = _http("PUT", f"{server.url}/cache/{bad}", b"{}")
            assert status in (400, 404)
        assert len(server.store) == 0

    def test_invalid_payload_put_is_rejected_and_counted(self, server):
        status, _ = _http("PUT", f"{server.url}/cache/{_KEY}", b"not json")
        assert status == 400
        status, _ = _http(
            "PUT", f"{server.url}/cache/{_KEY}",
            json.dumps({"version": -1, "key": _KEY}).encode())
        assert status == 400
        assert server.rejected == 2
        assert len(server.store) == 0


class TestRemoteResultCache:
    def test_url_validation_and_factory(self, tmp_path):
        with pytest.raises(ValueError):
            RemoteResultCache("ftp://nope")
        # An unsupported scheme must not silently become a local directory
        # literally named "ftp:/nope".
        with pytest.raises(ValueError, match="scheme"):
            open_cache("ftp://nope")
        backend = open_cache("http://127.0.0.1:1/", local_root=tmp_path)
        assert isinstance(backend, RemoteResultCache)
        assert backend.root == tmp_path

    def test_sweep_results_travel_through_the_server(self, tmp_path, server):
        spec = _small_spec()
        writer = RemoteResultCache(server.url, local_root=tmp_path / "host-a")
        first = run_sweep(spec, workers=1, cache=writer)
        assert first.cache_hits == 0
        assert writer.remote_stores == len(spec)
        assert server.puts == len(spec)

        # A different host (fresh local layer) is served by the remote...
        reader = RemoteResultCache(server.url, local_root=tmp_path / "host-b")
        second = run_sweep(spec, workers=1, cache=reader)
        assert second.cache_hits == len(spec)
        assert reader.remote_hits == len(spec)
        # ...identically (the entries are content-addressed and validated).
        assert first.table("ipc") == second.table("ipc")

        # Read-through: the remote hit is now on host-b's disk, so a third
        # run touches the server zero further times.
        gets_before = server.gets
        third = run_sweep(spec, workers=1, cache=reader)
        assert third.cache_hits == len(spec)
        assert server.gets == gets_before

    def test_invalid_remote_bytes_are_never_trusted(self, tmp_path, server):
        # Hand the server's store a corrupt entry directly on disk.
        store = server.store
        path = store.path_for(_KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"version": 0, "key": _KEY}))
        cache = RemoteResultCache(server.url, local_root=tmp_path)
        assert cache.get(_KEY) is None
        assert cache.remote_errors == 1
        assert cache.local.get(_KEY) is None  # never written through

    def test_dead_server_degrades_to_local_only(self, tmp_path):
        spec = _small_spec()
        cache = RemoteResultCache(
            "http://127.0.0.1:1", local_root=tmp_path, timeout_seconds=0.2)
        result = run_sweep(spec, workers=1, cache=cache)
        assert len(result) == len(spec)  # the sweep itself never fails
        assert cache.remote_errors > 0
        # The durable local copy exists and serves the re-run.
        rerun = run_sweep(spec, workers=1, cache=cache)
        assert rerun.cache_hits == len(spec)

    def test_describe_names_both_layers(self, tmp_path, server):
        cache = RemoteResultCache(server.url, local_root=tmp_path)
        assert server.url in cache.describe()
        assert str(tmp_path) in cache.describe()


class TestLocalRawTransport:
    def test_raw_round_trip_preserves_bytes(self, tmp_path):
        spec = _small_spec()
        cache = LocalResultCache(tmp_path)
        run_sweep(spec, workers=1, cache=cache)
        [key] = [cell.cache_key() for cell in spec.cells()]
        data = cache.load_raw(key)
        assert data is not None

        other = LocalResultCache(tmp_path / "copy")
        assert other.store_raw(key, data)
        assert other.load_raw(key) == data
        assert other.get(key) is not None

    def test_store_raw_rejects_garbage(self, tmp_path):
        cache = LocalResultCache(tmp_path)
        assert not cache.store_raw(_KEY, b"not a cache entry")
        assert cache.load_raw(_KEY) is None
