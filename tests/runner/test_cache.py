"""Tests for the on-disk result cache: hit/miss semantics and corruption recovery."""

import json

import pytest

from repro.platforms.base import GPUSSDPlatform, PlatformResult
from repro.runner import CACHE_VERSION, ResultCache, SweepSpec, execute_cell


@pytest.fixture(scope="module")
def cell():
    spec = SweepSpec.create(
        platforms=["ZnG-base"],
        workloads=["betw-back"],
        scale=0.05,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    return spec.cells()[0]


@pytest.fixture(scope="module")
def result(cell):
    return execute_cell(cell)


def _entry_path(cache, key):
    return cache.root / key[:2] / f"{key}.json"


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path, cell):
        cache = ResultCache(tmp_path)
        assert cache.get(cell.cache_key()) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_then_get_hits_identically(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        key = cell.cache_key()
        cache.put(key, result, cell.descriptor())
        restored = cache.get(key)
        assert restored is not None
        assert cache.hits == 1
        assert restored.stats.as_dict() == result.stats.as_dict()
        assert restored.ipc == result.ipc
        assert restored.latency_breakdown == result.latency_breakdown

    def test_different_key_still_misses(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        cache.put(cell.cache_key(), result, cell.descriptor())
        assert cache.get("0" * 64) is None

    def test_len_and_clear(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        cache.put(cell.cache_key(), result, cell.descriptor())
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestCorruptionRecovery:
    def test_truncated_entry_dropped_and_recomputed(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        key = cell.cache_key()
        cache.put(key, result, cell.descriptor())
        path = _entry_path(cache, key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        assert cache.get(key) is None
        assert cache.corrupt_dropped == 1
        assert not path.exists(), "corrupt entry must be deleted"

        # The cell recomputes and repopulates; the fresh entry then hits.
        recomputed = execute_cell(cell)
        cache.put(key, recomputed, cell.descriptor())
        assert cache.get(key).stats.as_dict() == result.stats.as_dict()

    def test_wrong_version_treated_as_miss(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        key = cell.cache_key()
        cache.put(key, result, cell.descriptor())
        path = _entry_path(cache, key)
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert not path.exists()

    def test_key_mismatch_treated_as_miss(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        key = cell.cache_key()
        cache.put(key, result, cell.descriptor())
        path = _entry_path(cache, key)
        payload = json.loads(path.read_text())
        payload["key"] = "f" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    @pytest.mark.parametrize("content", ["null", "123", '"x"', "[]"])
    def test_non_object_json_treated_as_miss(self, tmp_path, cell, result, content):
        cache = ResultCache(tmp_path)
        key = cell.cache_key()
        cache.put(key, result, cell.descriptor())
        path = _entry_path(cache, key)
        path.write_text(content)
        assert cache.get(key) is None
        assert not path.exists()

    def test_garbage_json_object_treated_as_miss(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        key = cell.cache_key()
        path = _entry_path(cache, key)
        path.parent.mkdir(parents=True)
        path.write_text('{"version": %d, "key": "%s"}' % (CACHE_VERSION, key))
        assert cache.get(key) is None


class TestTmpFileGarbageCollection:
    """An interrupted ``put`` (killed between mkstemp and os.replace) leaks a
    ``*.tmp`` file; the cache must collect such orphans instead of hoarding
    them forever, without racing a concurrent writer's fresh tmp file."""

    @staticmethod
    def _make_tmp(root, name, age_seconds):
        import os
        import time

        shard = root / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        tmp = shard / name
        tmp.write_text("torn write")
        stamp = time.time() - age_seconds
        os.utime(tmp, (stamp, stamp))
        return tmp

    def test_stale_tmp_collected_on_first_access(self, tmp_path, cell):
        orphan = self._make_tmp(tmp_path, "orphan.tmp", age_seconds=3600)
        cache = ResultCache(tmp_path)
        cache.get(cell.cache_key())  # any access triggers the sweep
        assert not orphan.exists()
        assert cache.tmp_collected == 1

    def test_fresh_tmp_left_alone(self, tmp_path, cell):
        fresh = self._make_tmp(tmp_path, "inflight.tmp", age_seconds=0)
        cache = ResultCache(tmp_path)
        cache.get(cell.cache_key())
        assert fresh.exists(), "a concurrent writer's tmp file must survive"
        assert cache.tmp_collected == 0

    def test_put_triggers_collection_too(self, tmp_path, cell, result):
        orphan = self._make_tmp(tmp_path, "orphan.tmp", age_seconds=3600)
        cache = ResultCache(tmp_path)
        cache.put(cell.cache_key(), result, cell.descriptor())
        assert not orphan.exists()
        assert cache.get(cell.cache_key()) is not None

    def test_clear_removes_tmp_files_and_empty_shard_dirs(self, tmp_path, cell, result):
        cache = ResultCache(tmp_path)
        cache.put(cell.cache_key(), result, cell.descriptor())
        self._make_tmp(tmp_path, "orphan.tmp", age_seconds=0)  # even fresh ones
        assert cache.clear() == 1
        leftovers = list(tmp_path.rglob("*"))
        assert leftovers == [], f"clear left {leftovers} behind"

    def test_interrupted_put_leaves_no_entry(self, tmp_path, cell, result, monkeypatch):
        import os

        cache = ResultCache(tmp_path)
        key = cell.cache_key()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            cache.put(key, result, cell.descriptor())
        monkeypatch.undo()
        # The failed put cleaned up after itself: no entry, no tmp litter.
        assert cache.get(key) is None
        assert list(tmp_path.glob("*/*.tmp")) == []


class TestRecordRoundTrip:
    def test_json_round_trip_is_lossless(self, result):
        record = json.loads(json.dumps(result.to_record()))
        restored = PlatformResult.from_record(record)
        assert restored.stats.to_dict() == result.stats.to_dict()
        assert restored.execution.cycles == result.execution.cycles
        assert restored.execution.per_sm == result.execution.per_sm
        assert restored.extra == result.extra


class TestMergedWith:
    def test_merge_preserves_per_sm_and_weights_hit_rate(self, result):
        clone = PlatformResult.from_record(result.to_record())
        merged = result.merged_with(clone)
        assert merged.execution.instructions == 2 * result.execution.instructions
        assert merged.execution.cycles == result.execution.cycles
        # Per-SM statistics survive the merge with counters added.
        assert set(merged.execution.per_sm) == set(result.execution.per_sm)
        for sm_id, sm in result.execution.per_sm.items():
            assert merged.execution.per_sm[sm_id].instructions == 2 * sm.instructions
            assert merged.execution.per_sm[sm_id].completion_cycle == sm.completion_cycle
        # Merging equal shards keeps the (traffic-weighted) hit rate unchanged.
        assert merged.l2_hit_rate == pytest.approx(result.l2_hit_rate)
        assert merged.stats.get("requests") == 2 * result.stats.get("requests")
