"""Regression tests for the per-process trace memo.

Two bugs are pinned here: the memo key must be derived from *everything*
``build_cell_trace`` consumes (a ``--set`` ablation changing a trace knob
must never replay a stale trace), and overflowing the memo must evict the
oldest entry instead of dropping the whole working set.
"""

import pytest

from repro.runner import SweepSpec
from repro.runner.runner import _TRACE_MEMO, _TRACE_MEMO_MAX_ENTRIES, _trace_for


def _cell(**kwargs):
    defaults = dict(
        platforms=["ZnG-base"],
        workloads=["bfs1"],
        scale=0.05,
        warps_per_sm=1,
        memory_instructions_per_warp=8,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults).cells()[0]


@pytest.fixture(autouse=True)
def clean_memo():
    saved = dict(_TRACE_MEMO)
    _TRACE_MEMO.clear()
    yield
    _TRACE_MEMO.clear()
    _TRACE_MEMO.update(saved)


class TestTraceKeyCoverage:
    def test_key_covers_every_trace_knob(self):
        """Changing any knob build_cell_trace consumes must change the key."""
        base = _cell()
        variants = {
            "workload": _cell(workloads=["betw"]),
            "scale": _cell(scale=0.1),
            "seed": _cell(seed=7),
            "num_sms": _cell(num_sms=8),
            "warps_per_sm": _cell(warps_per_sm=2),
            "memory_instructions_per_warp": _cell(memory_instructions_per_warp=16),
        }
        for knob, variant in variants.items():
            assert variant.trace_key() != base.trace_key(), (
                f"trace memo would alias cells differing in {knob}"
            )

    def test_platform_and_override_share_the_trace(self):
        """Platform/override changes must NOT change the key: every platform
        of a sweep runs the identical trace by design."""
        spec = SweepSpec.create(
            platforms=["ZnG-base", "ZnG"],
            workloads=["bfs1"],
            overrides={"reg16": {"register_cache.registers_per_plane": 16}},
            scale=0.05,
            warps_per_sm=1,
            memory_instructions_per_warp=8,
        )
        keys = {cell.trace_key() for cell in spec.cells()}
        assert len(keys) == 1

    def test_distinct_knobs_build_distinct_traces(self):
        first = _trace_for(_cell(memory_instructions_per_warp=8))
        second = _trace_for(_cell(memory_instructions_per_warp=200))
        assert first is not second
        assert len(first.warps[0]) != len(second.warps[0])

    def test_same_knobs_reuse_the_memoised_trace(self):
        first = _trace_for(_cell())
        second = _trace_for(_cell(platforms=["ZnG"]))
        assert first is second


class TestMemoEviction:
    def test_overflow_evicts_oldest_not_everything(self):
        cells = [_cell(seed=seed) for seed in range(_TRACE_MEMO_MAX_ENTRIES + 3)]
        for cell in cells:
            _trace_for(cell)
        assert len(_TRACE_MEMO) == _TRACE_MEMO_MAX_ENTRIES
        for evicted in cells[:3]:
            assert evicted.trace_key() not in _TRACE_MEMO
        for retained in cells[3:]:
            assert retained.trace_key() in _TRACE_MEMO

    def test_recently_used_entry_survives_overflow(self):
        cells = [_cell(seed=seed) for seed in range(_TRACE_MEMO_MAX_ENTRIES)]
        for cell in cells:
            _trace_for(cell)
        # Touch the oldest entry, then overflow by one: the *second* oldest
        # must be evicted (LRU), not the freshly touched one (FIFO/clear).
        kept = _trace_for(cells[0])
        _trace_for(_cell(seed=10_000))
        assert cells[0].trace_key() in _TRACE_MEMO
        assert cells[1].trace_key() not in _TRACE_MEMO
        assert _trace_for(cells[0]) is kept

    def test_memo_never_exceeds_bound(self):
        for seed in range(3 * _TRACE_MEMO_MAX_ENTRIES):
            _trace_for(_cell(seed=seed))
            assert len(_TRACE_MEMO) <= _TRACE_MEMO_MAX_ENTRIES
