"""Sharded sweep execution: exact partition, determinism, merged equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import SweepRunner, SweepShard, SweepSpec, merge_manifests, run_sweep

#: Cheap grid axes for partition properties (never simulated, only hashed).
_PLATFORMS = ["GDDR5", "ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG"]
_WORKLOADS = ["betw-back", "bfs1", "pr-gaus", "gaus"]
_AXES = {
    "reg16": {"register_cache.registers_per_plane": 16},
    "wide": {"znand.channels": 32},
}


def _small_spec(**kwargs):
    defaults = dict(
        platforms=["ZnG-base", "ZnG"],
        workloads=["betw-back", "bfs1"],
        scale=0.06,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults)


class TestShardPartitionProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        platforms=st.lists(st.sampled_from(_PLATFORMS), min_size=1, max_size=3,
                           unique=True),
        workloads=st.lists(st.sampled_from(_WORKLOADS), min_size=1, max_size=2,
                           unique=True),
        labels=st.lists(st.sampled_from(sorted(_AXES)), max_size=2, unique=True),
        count=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=1, max_value=3),
    )
    def test_shard_union_is_exact_partition(self, platforms, workloads, labels,
                                            count, seed):
        """For any spec and shard count, the multiset of cells across all
        shards equals the unsharded spec — every cell exactly once."""
        spec = SweepSpec.create(
            platforms=platforms,
            workloads=workloads,
            overrides={label: _AXES[label] for label in labels} or None,
            seed=seed,
        )
        full = sorted(cell.cache_key() for cell in spec.cells())
        union = []
        for index in range(count):
            shard = spec.shard(index, count)
            shard_keys = [cell.cache_key() for cell in shard.cells()]
            assert len(shard) == len(shard_keys)
            union.extend(shard_keys)
        assert sorted(union) == full
        # Balanced: shard sizes differ by at most one.
        sizes = [len(spec.shard(index, count)) for index in range(count)]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_cells_are_deterministic_across_calls(self):
        spec = _small_spec()
        shard = spec.shard(1, 3)
        first = [cell.cache_key() for cell in shard.cells()]
        second = [cell.cache_key() for cell in spec.shard(1, 3).cells()]
        assert first == second

    def test_single_shard_is_whole_spec(self):
        spec = _small_spec()
        assert sorted(c.cache_key() for c in spec.shard(0, 1).cells()) == \
            sorted(c.cache_key() for c in spec.cells())


class TestShardValidation:
    def test_index_out_of_range(self):
        spec = _small_spec()
        with pytest.raises(ValueError):
            spec.shard(3, 3)
        with pytest.raises(ValueError):
            spec.shard(-1, 3)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            _small_spec().shard(0, 0)


class TestShardedRunEquivalence:
    def test_merged_sharded_run_bit_identical_to_serial(self, tmp_path):
        """Acceptance: 3 shards on the smoke grid, merged via manifests,
        reproduce the unsharded serial sweep bit-for-bit."""
        spec = _small_spec()
        serial = run_sweep(spec, workers=1)

        manifest_paths = []
        for index in range(3):
            root = tmp_path / f"shard{index}"
            result = SweepRunner(workers=1, cache=root).run(
                spec.shard(index, 3), manifest_path=root / "manifest.json")
            assert result.shard_index == index and result.shard_count == 3
            assert not result.failed
            manifest_paths.append(root / "manifest.json")

        merged = merge_manifests(manifest_paths)
        assert len(merged) == len(spec) == len(serial)
        assert merged.stats_dicts() == serial.stats_dicts()
        assert merged.table("ipc") == serial.table("ipc")
        assert merged.table("cycles") == serial.table("cycles")
        assert merged.merged_shards == 3

    def test_shard_run_executes_only_its_cells(self):
        spec = _small_spec()
        shard = spec.shard(0, 2)
        result = run_sweep(shard, workers=1)
        assert len(result) == len(shard) < len(spec)
        expected = {cell.cache_key() for cell in shard.cells()}
        assert {run.cell.cache_key() for run in result} == expected

    def test_shard_perf_report_carries_coordinates(self):
        result = run_sweep(_small_spec().shard(1, 2), workers=1)
        report = result.perf_report()
        assert report["shard_index"] == 1 and report["shard_count"] == 2

    def test_shard_runs_share_the_cell_cache_keys(self, tmp_path):
        """A cell computed by a shard run is a cache hit for the full sweep."""
        spec = _small_spec()
        SweepRunner(workers=1, cache=tmp_path).run(spec.shard(0, 2))
        full = SweepRunner(workers=1, cache=tmp_path).run(spec)
        assert full.cache_hits == len(spec.shard(0, 2))


class TestSweepShardObject:
    def test_fingerprint_is_the_spec_fingerprint(self):
        spec = _small_spec()
        assert spec.shard(0, 2).fingerprint() == spec.fingerprint()
        assert spec.shard(1, 2).fingerprint() == spec.fingerprint()

    def test_create_validates(self):
        with pytest.raises(ValueError):
            SweepShard.create(_small_spec(), 2, 2)
