"""Run manifests: round-trip, failure recording, resume, and merge checks."""

import json

import pytest

from repro.runner import (
    MANIFEST_SCHEMA,
    ManifestError,
    MergeError,
    ResultCache,
    RunManifest,
    SweepExecutionError,
    SweepRunner,
    SweepSpec,
    merge_manifests,
    resume_sweep,
    run_sweep,
)


def _small_spec(**kwargs):
    defaults = dict(
        platforms=["ZnG-base", "ZnG"],
        workloads=["betw-back", "bfs1"],
        scale=0.06,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults)


def _run_with_manifest(tmp_path, spec=None, name="manifest.json", workers=1):
    spec = spec or _small_spec()
    manifest_path = tmp_path / name
    result = SweepRunner(workers=workers, cache=tmp_path).run(
        spec, manifest_path=manifest_path)
    return spec, manifest_path, result


class TestManifestRoundTrip:
    def test_written_manifest_loads_back(self, tmp_path):
        spec, path, _ = _run_with_manifest(tmp_path)
        manifest = RunManifest.load(path)
        assert manifest.spec_fingerprint == spec.fingerprint()
        assert manifest.shard_index == 0 and manifest.shard_count == 1
        assert manifest.counts() == {"ok": len(spec), "failed": 0, "pending": 0}
        assert manifest.elapsed_seconds > 0.0
        assert {cell.cache_key for cell in manifest.cells} == \
            {cell.cache_key() for cell in spec.cells()}

    def test_schema_field_is_versioned(self, tmp_path):
        _, path, _ = _run_with_manifest(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["shard"] == {"index": 0, "count": 1}

    def test_spec_reconstruction_is_exact(self, tmp_path):
        spec = _small_spec(
            overrides={"reg16": {"register_cache.registers_per_plane": 16}},
            seed=7,
        )
        _, path, _ = _run_with_manifest(tmp_path, spec=spec)
        rebuilt = RunManifest.load(path).spec()
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()
        assert [c.cache_key() for c in rebuilt.cells()] == \
            [c.cache_key() for c in spec.cells()]

    def test_base_config_survives_round_trip(self, tmp_path):
        from repro.config import default_config
        from repro.runner import apply_overrides

        base = apply_overrides(default_config(), {"znand.channels": 32})
        spec = _small_spec(platforms=["ZnG"], workloads=["bfs1"], base_config=base)
        _, path, _ = _run_with_manifest(tmp_path, spec=spec)
        rebuilt = RunManifest.load(path).spec()
        assert rebuilt.base_config == base
        assert rebuilt.cells()[0].cache_key() == spec.cells()[0].cache_key()

    def test_sharded_manifest_records_coordinates(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "m.json"
        SweepRunner(workers=1, cache=tmp_path).run(
            spec.shard(1, 3), manifest_path=path)
        manifest = RunManifest.load(path)
        assert (manifest.shard_index, manifest.shard_count) == (1, 3)
        assert len(manifest.cells) == len(spec.shard(1, 3))

    def test_load_rejects_garbage_and_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ManifestError):
            RunManifest.load(bad)
        bad.write_text(json.dumps({"schema": "repro-run-manifest-v0"}))
        with pytest.raises(ManifestError):
            RunManifest.load(bad)
        with pytest.raises(ManifestError):
            RunManifest.load(tmp_path / "nope.json")


class TestFailureRecording:
    def _broken_execute(self, monkeypatch, broken_platform="ZnG-base"):
        from repro.platforms.base import GPUSSDPlatform
        from repro.runner import runner as runner_module

        real = GPUSSDPlatform.execute

        def explode(name, trace, config=None):
            if name == broken_platform:
                raise RuntimeError(f"injected failure for {name}")
            return real(name, trace, config)

        monkeypatch.setattr(
            runner_module.GPUSSDPlatform, "execute", staticmethod(explode))

    def test_record_mode_keeps_sweeping(self, tmp_path, monkeypatch):
        self._broken_execute(monkeypatch)
        spec = _small_spec()
        path = tmp_path / "manifest.json"
        result = SweepRunner(workers=1, cache=tmp_path).run(
            spec, manifest_path=path, on_error="record")
        assert len(result.failed) == 2  # ZnG-base x 2 workloads
        assert len(result) == len(spec) - 2
        assert all("injected failure" in failure.error for failure in result.failed)
        manifest = RunManifest.load(path)
        assert manifest.counts() == {"ok": 2, "failed": 2, "pending": 0}
        failed = [cell for cell in manifest.cells if cell.status == "failed"]
        assert all(cell.platform == "ZnG-base" for cell in failed)
        assert all(cell.error and "injected failure" in cell.error
                   for cell in failed)

    def test_raise_mode_raises_with_manifest_written(self, tmp_path, monkeypatch):
        self._broken_execute(monkeypatch)
        path = tmp_path / "manifest.json"
        with pytest.raises(SweepExecutionError):
            SweepRunner(workers=1, cache=tmp_path).run(
                _small_spec(), manifest_path=path, on_error="raise")
        manifest = RunManifest.load(path)
        assert manifest.counts()["failed"] >= 1

    def test_resume_after_failure_completes_the_sweep(self, tmp_path, monkeypatch):
        self._broken_execute(monkeypatch)
        spec = _small_spec()
        path = tmp_path / "manifest.json"
        SweepRunner(workers=1, cache=tmp_path).run(
            spec, manifest_path=path, on_error="record")
        monkeypatch.undo()

        resumed = resume_sweep(path, workers=1)
        assert resumed.cache_hits == 2 and resumed.cache_misses == 2
        assert not resumed.failed and len(resumed) == len(spec)
        assert RunManifest.load(path).counts()["ok"] == len(spec)
        assert resumed.stats_dicts() == run_sweep(spec, workers=1).stats_dicts()

    def test_bad_on_error_value_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(workers=1).run(_small_spec(), on_error="ignore")


class TestResumeAfterKill:
    def test_resume_executes_only_missing_cells(self, tmp_path):
        """Acceptance: after a simulated mid-sweep kill (some cells ok and
        cached, the rest still pending with no cache entry), --resume
        executes exactly the missing cells and reproduces the full sweep."""
        spec = _small_spec()
        path = tmp_path / "manifest.json"
        full = SweepRunner(workers=1, cache=tmp_path).run(spec, manifest_path=path)

        # Rewind two cells to the pre-completion state a SIGKILL leaves.
        manifest = RunManifest.load(path)
        cache = ResultCache(tmp_path)
        killed = manifest.cells[:2]
        for cell in killed:
            cell.status = "pending"
            cache.path_for(cell.cache_key).unlink()
        manifest.write()

        resumed = resume_sweep(path, workers=1)
        assert resumed.cache_misses == 2
        assert resumed.cache_hits == len(spec) - 2
        assert resumed.stats_dicts() == full.stats_dicts()
        assert RunManifest.load(path).counts()["ok"] == len(spec)

    def test_resume_respects_shard_coordinates(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "manifest.json"
        SweepRunner(workers=1, cache=tmp_path).run(spec.shard(0, 2),
                                                   manifest_path=path)
        resumed = resume_sweep(path, workers=1)
        assert resumed.shard_index == 0 and resumed.shard_count == 2
        assert len(resumed) == len(spec.shard(0, 2))
        assert resumed.cache_hit_rate == 1.0

    def test_resume_finds_cache_next_to_manifest(self, tmp_path):
        """A manifest moved with its cache (artifact download) still resumes:
        the recorded cache_dir is stale but the manifest's directory wins."""
        spec = _small_spec(platforms=["ZnG"], workloads=["bfs1"])
        original = tmp_path / "original"
        _, path, _ = _run_with_manifest(original, spec=spec)
        moved = tmp_path / "downloaded"
        original.rename(moved)
        resumed = resume_sweep(moved / "manifest.json", workers=1)
        assert resumed.cache_hit_rate == 1.0


class TestMergeVerification:
    def _sharded_run(self, tmp_path, count=3, spec=None):
        spec = spec or _small_spec()
        paths = []
        for index in range(count):
            root = tmp_path / f"shard{index}"
            SweepRunner(workers=1, cache=root).run(
                spec.shard(index, count), manifest_path=root / "manifest.json")
            paths.append(root / "manifest.json")
        return spec, paths

    def test_withheld_shard_fails_loudly(self, tmp_path):
        _, paths = self._sharded_run(tmp_path)
        with pytest.raises(MergeError, match="unaccounted"):
            merge_manifests(paths[:2])

    def test_duplicated_shard_fails(self, tmp_path):
        _, paths = self._sharded_run(tmp_path)
        with pytest.raises(MergeError, match="twice"):
            merge_manifests(paths + [paths[0]])

    def test_mismatched_fingerprints_fail(self, tmp_path):
        _, paths_a = self._sharded_run(tmp_path / "a", count=2)
        spec_b = _small_spec(seed=99)
        _, paths_b = self._sharded_run(tmp_path / "b", count=2, spec=spec_b)
        with pytest.raises(MergeError, match="fingerprint"):
            merge_manifests([paths_a[0], paths_b[1]])

    def test_pending_cell_fails(self, tmp_path):
        _, paths = self._sharded_run(tmp_path)
        manifest = RunManifest.load(paths[1])
        manifest.cells[0].status = "pending"
        manifest.write()
        with pytest.raises(MergeError, match="status 'pending'"):
            merge_manifests(paths)

    def test_missing_cache_entry_fails(self, tmp_path):
        _, paths = self._sharded_run(tmp_path)
        manifest = RunManifest.load(paths[0])
        ResultCache(paths[0].parent).path_for(
            manifest.cells[0].cache_key).unlink()
        with pytest.raises(MergeError, match="missing or corrupt"):
            merge_manifests(paths)

    def test_merge_of_unsharded_manifest_validates_a_full_run(self, tmp_path):
        spec, path, result = _run_with_manifest(tmp_path)
        merged = merge_manifests([path])
        assert merged.stats_dicts() == result.stats_dicts()
        assert merged.merged_shards == 1

    def test_no_manifests_rejected(self):
        with pytest.raises(MergeError):
            merge_manifests([])

    def test_merged_perf_report_aggregates_shards(self, tmp_path):
        spec, paths = self._sharded_run(tmp_path)
        merged = merge_manifests(paths)
        report = merged.perf_report()
        assert report["merged_shards"] == 3
        assert len(report["shard_elapsed_seconds"]) == 3
        assert report["elapsed_seconds"] == pytest.approx(
            sum(report["shard_elapsed_seconds"]))
        # Cold shard runs executed every cell: the merge must report the
        # shards' real executed counts and timings, not read as a sweep of
        # cache hits (which would zero the perf trajectory).
        assert report["executed_cells"] == len(spec)
        assert report["executed_cells_per_sec"] > 0.0
        assert report["simulate_seconds"] > 0.0

    def test_merge_preserves_shard_cache_accounting(self, tmp_path):
        """Re-running a shard warm then merging reports those cells as
        cache-served, executed ones as executed."""
        spec, paths = self._sharded_run(tmp_path, count=2)
        # Re-run shard 0 fully warm so its manifest records cache hits.
        resume_sweep(paths[0], workers=1)
        merged = merge_manifests(paths)
        warm = len(spec.shard(0, 2))
        assert merged.cache_hits == warm
        assert merged.perf_report()["executed_cells"] == len(spec) - warm


class TestManifestIsWrittenIncrementally:
    def test_manifest_exists_with_pending_cells_before_execution(self, tmp_path, monkeypatch):
        """The all-pending manifest must hit disk before the first cell runs,
        or a kill during the first cell would leave nothing to resume."""
        from repro.platforms.base import GPUSSDPlatform
        from repro.runner import runner as runner_module

        path = tmp_path / "manifest.json"
        seen = {}

        real = GPUSSDPlatform.execute

        def spy(name, trace, config=None):
            if "counts" not in seen:
                seen["counts"] = RunManifest.load(path).counts()
            return real(name, trace, config)

        monkeypatch.setattr(
            runner_module.GPUSSDPlatform, "execute", staticmethod(spy))
        spec = _small_spec()
        SweepRunner(workers=1, cache=tmp_path).run(spec, manifest_path=path)
        assert seen["counts"]["pending"] == len(spec)
