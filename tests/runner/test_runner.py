"""Tests for the sweep orchestrator: parallel equivalence and memoization."""

import os
import pickle

import pytest

from repro.runner import ResultCache, SweepRunner, SweepSpec, run_sweep


def _small_spec(**kwargs):
    defaults = dict(
        platforms=["ZnG-base", "ZnG"],
        workloads=["betw-back", "bfs1"],
        scale=0.06,
        warps_per_sm=2,
        memory_instructions_per_warp=12,
    )
    defaults.update(kwargs)
    return SweepSpec.create(**defaults)


class TestSerialParallelEquivalence:
    def test_parallel_stats_bit_identical_to_serial(self):
        spec = _small_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert len(serial) == len(parallel) == 4
        # Bit-identical statistics dictionaries, not just close IPC.
        assert serial.stats_dicts() == parallel.stats_dicts()
        assert serial.table("ipc") == parallel.table("ipc")
        assert serial.table("cycles") == parallel.table("cycles")

    def test_rerun_reproduces_exactly(self):
        spec = _small_spec()
        assert run_sweep(spec).stats_dicts() == run_sweep(spec).stats_dicts()

    def test_cells_and_results_are_picklable(self):
        spec = _small_spec()
        cell = spec.cells()[0]
        assert pickle.loads(pickle.dumps(cell)) == cell
        result = run_sweep(_small_spec(platforms=["ZnG-base"], workloads=["bfs1"]))
        run = result.runs[0]
        clone = pickle.loads(pickle.dumps(run.result))
        assert clone.stats.as_dict() == run.result.stats.as_dict()


class TestMemoization:
    def test_second_run_served_from_cache(self, tmp_path):
        spec = _small_spec()
        first = SweepRunner(workers=2, cache=tmp_path).run(spec)
        assert first.cache_hits == 0 and first.cache_misses == len(spec)

        second = SweepRunner(workers=2, cache=tmp_path).run(spec)
        assert second.cache_misses == 0
        assert second.cache_hit_rate == 1.0
        assert second.stats_dicts() == first.stats_dicts()

    def test_ablation_rerun_is_incremental(self, tmp_path):
        base = _small_spec(platforms=["ZnG-base"])
        SweepRunner(cache=tmp_path).run(base)
        # Adding a platform re-runs only the new cells.
        extended = _small_spec(platforms=["ZnG-base", "ZnG"])
        rerun = SweepRunner(cache=tmp_path).run(extended)
        assert rerun.cache_hits == len(base)
        assert rerun.cache_misses == len(extended) - len(base)

    def test_config_override_misses_cache(self, tmp_path):
        spec = _small_spec(platforms=["ZnG"], workloads=["betw-back"])
        SweepRunner(cache=tmp_path).run(spec)
        ablated = _small_spec(
            platforms=["ZnG"],
            workloads=["betw-back"],
            overrides={"reg16": {"register_cache.registers_per_plane": 16}},
        )
        result = SweepRunner(cache=tmp_path).run(ablated)
        assert result.cache_hits == 0

    def test_cache_disabled_never_touches_disk(self, tmp_path):
        runner = SweepRunner(workers=1, cache=False)
        runner.run(_small_spec(platforms=["ZnG-base"], workloads=["bfs1"]))
        assert runner.cache is None
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_recomputed_in_sweep(self, tmp_path):
        spec = _small_spec(platforms=["ZnG-base"], workloads=["bfs1"])
        first = SweepRunner(cache=tmp_path).run(spec)
        cache = ResultCache(tmp_path)
        entry = next(cache.root.glob("*/*.json"))
        entry.write_text("not json at all {")

        recovered = SweepRunner(cache=tmp_path).run(spec)
        assert recovered.cache_hits == 0 and recovered.cache_misses == 1
        assert recovered.stats_dicts() == first.stats_dicts()
        # ...and the repaired entry hits again afterwards.
        third = SweepRunner(cache=tmp_path).run(spec)
        assert third.cache_hit_rate == 1.0


class TestSweepResultAccessors:
    def test_get_and_table(self):
        result = run_sweep(_small_spec())
        assert result.get("ZnG", "betw-back") is not None
        assert result.get("ZnG", "nope") is None
        table = result.table("ipc")
        assert set(table) == {"betw-back", "bfs1"}
        assert set(table["bfs1"]) == {"ZnG-base", "ZnG"}


@pytest.mark.skipif(os.cpu_count() == 1, reason="needs >1 core for wall-clock speedup")
class TestParallelSpeedup:
    def test_four_workers_beat_serial(self):
        import time

        spec = SweepSpec.create(
            platforms=["ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG"],
            workloads=["betw-back", "bfs1-gaus", "pr-gaus"],
            scale=0.15,
            warps_per_sm=4,
        )
        start = time.perf_counter()
        serial = run_sweep(spec, workers=1)
        serial_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_sweep(spec, workers=4)
        parallel_elapsed = time.perf_counter() - start
        assert serial.stats_dicts() == parallel.stats_dicts()
        assert parallel_elapsed <= 0.6 * serial_elapsed


class TestCellFailureDiscardsPool:
    def test_raise_mode_terminates_pool_so_no_ghost_work_survives(self, monkeypatch):
        """Raising out of a parallel sweep abandons the result iterator with
        cells still queued; the pool must be discarded (terminating them),
        not left cached, or ghost simulations keep burning the workers."""
        from repro.runner import SweepExecutionError, shutdown_worker_pools
        from repro.runner import runner as runner_module

        def explode(name, trace, config=None):
            raise RuntimeError("injected cell failure")

        monkeypatch.setattr(
            runner_module.GPUSSDPlatform, "execute", staticmethod(explode))
        # A pool forked before the patch would not see it — start fresh.
        shutdown_worker_pools()
        runner = SweepRunner(workers=2, cache=False)
        try:
            with pytest.raises(SweepExecutionError):
                runner.run(_small_spec())
            assert runner_module._POOLS.get(2) is None
        finally:
            shutdown_worker_pools()


class TestSharedPoolRecovery:
    def test_dead_pool_is_replaced_not_cached(self):
        """A broken shared pool must be discarded after a failed dispatch so
        later sweeps recover with a fresh fork instead of failing forever."""
        from repro.runner import runner as runner_module
        from repro.runner import shutdown_worker_pools

        spec = _small_spec()
        runner = SweepRunner(workers=2, cache=False)
        try:
            assert len(runner.run(spec)) == len(spec)
            dead = runner_module._POOLS[2]
            dead.terminate()
            dead.join()
            with pytest.raises(Exception):
                runner.run(spec)
            assert runner_module._POOLS.get(2) is not dead
            recovered = runner.run(spec)
            assert len(recovered) == len(spec)
        finally:
            shutdown_worker_pools()
