"""Package marker so duplicate test basenames collect under distinct module names."""
