"""Property tests for the lease-queue state machine.

The protocol's whole job is three invariants, each driven here by
hypothesis-generated claim/heartbeat/expire/steal/commit interleavings over
an injectable clock:

* **no cell is ever lost** — whatever happened, every cell can still be
  driven to done (an orphaned lease only costs the TTL);
* **no committed cell runs twice** — once done, claims and re-commits are
  refused forever;
* **steals are race-free** — of N workers racing for one expired lease,
  exactly one wins, even with real threads.
"""

import hashlib
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.dispatch import LeaseQueue

_TTL = 10.0
_WORKERS = ["w0", "w1", "w2"]
_KEYS = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(3)]

# One abstract protocol event: (action, worker index, key index, seconds).
_EVENTS = st.tuples(
    st.sampled_from(["claim", "heartbeat", "commit", "abandon", "advance"]),
    st.integers(min_value=0, max_value=len(_WORKERS) - 1),
    st.integers(min_value=0, max_value=len(_KEYS) - 1),
    st.sampled_from([0.0, 1.0, _TTL / 2, _TTL + 1.0]),
)


def _fresh_queue(tmp_path, clock):
    queue = LeaseQueue(tmp_path, lease_ttl_seconds=_TTL, clock=lambda: clock[0])
    queue.leases_dir.mkdir(parents=True, exist_ok=True)
    queue.done_dir.mkdir(parents=True, exist_ok=True)
    return queue


class TestLeaseStateMachine:
    @settings(max_examples=60, deadline=None)
    @given(events=st.lists(_EVENTS, max_size=40))
    def test_interleavings_preserve_the_three_invariants(
        self, tmp_path_factory, events
    ):
        clock = [1_000_000.0]
        queue = _fresh_queue(tmp_path_factory.mktemp("queue"), clock)
        held = {}        # (worker, key) -> Lease currently held
        committed = set()

        for action, worker_index, key_index, seconds in events:
            worker, key = _WORKERS[worker_index], _KEYS[key_index]
            if action == "advance":
                clock[0] += seconds
            elif action == "claim":
                lease = queue.try_claim(key, worker)
                if key in committed:
                    assert lease is None, "claimed an already-committed cell"
                if lease is not None:
                    # The win must have been legitimate: nobody else holds a
                    # live (unexpired) lease on this key.
                    for (other, other_key), other_lease in held.items():
                        if other_key != key or other == worker:
                            continue
                        age = clock[0] - other_lease.path.stat().st_mtime
                        assert age > _TTL, (
                            "stole a lease that was still alive")
                    held = {
                        pair: lease_
                        for pair, lease_ in held.items() if pair[1] != key
                    }
                    held[(worker, key)] = lease
            elif action == "heartbeat":
                lease = held.get((worker, key))
                if lease is not None:
                    queue.heartbeat(lease)
            elif action == "abandon":
                # Crash simulation: the worker forgets its lease and never
                # heartbeats again; only the TTL may release the cell.
                held.pop((worker, key), None)
            elif action == "commit":
                lease = held.pop((worker, key), None)
                if lease is None:
                    continue
                won = queue.commit(key, worker, lease.generation)
                if key in committed:
                    assert not won, "a cell was committed twice"
                if won:
                    committed.add(key)
                assert queue.is_done(key) or not won

        # Invariant: nothing is ever lost.  Whatever mess the interleaving
        # left (orphaned leases, half-done work), a finisher that waits out
        # one TTL can always drive every cell to done.
        clock[0] += _TTL + 1.0
        for key in _KEYS:
            if key in committed:
                assert queue.is_done(key)
                continue
            lease = queue.try_claim(key, "finisher")
            assert lease is not None, "an uncommitted cell became unclaimable"
            assert queue.commit(key, "finisher", lease.generation)
        assert queue.all_done(_KEYS)

        # Invariant: done is final.  No claim, no second commit, ever.
        clock[0] += _TTL + 1.0
        for key in _KEYS:
            assert queue.try_claim(key, "late") is None
            assert not queue.commit(key, "late", 99)

    @settings(max_examples=25, deadline=None)
    @given(thieves=st.integers(min_value=2, max_value=6))
    def test_threads_racing_for_one_expired_lease_one_winner(
        self, tmp_path_factory, thieves
    ):
        clock = [1_000_000.0]
        queue = _fresh_queue(tmp_path_factory.mktemp("race"), clock)
        key = _KEYS[0]
        assert queue.try_claim(key, "victim") is not None
        clock[0] += _TTL + 1.0  # the victim dies silently; lease expires

        barrier = threading.Barrier(thieves)
        wins = []

        def race(name):
            barrier.wait()
            lease = queue.try_claim(key, name)
            if lease is not None:
                wins.append(lease)

        threads = [
            threading.Thread(target=race, args=(f"thief-{i}",))
            for i in range(thieves)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(wins) == 1, f"{len(wins)} thieves won the same steal"
        assert wins[0].generation == 2

    def test_generation_numbers_record_the_steal_chain(self, tmp_path):
        clock = [1_000_000.0]
        queue = _fresh_queue(tmp_path, clock)
        key = _KEYS[0]
        for generation in (1, 2, 3):
            lease = queue.try_claim(key, f"owner-{generation}")
            assert lease is not None and lease.generation == generation
            assert queue.try_claim(key, "interloper") is None  # live lease
            clock[0] += _TTL + 1.0
        state = queue.current_lease(key)
        assert state["generation"] == 3 and state["expired"]

    def test_heartbeat_keeps_a_lease_alive_past_the_ttl(self, tmp_path):
        clock = [1_000_000.0]
        queue = _fresh_queue(tmp_path, clock)
        key = _KEYS[0]
        lease = queue.try_claim(key, "steady")
        for _ in range(5):
            clock[0] += _TTL / 2
            queue.heartbeat(lease)
            assert queue.try_claim(key, "thief") is None
        clock[0] += _TTL + 1.0  # heartbeats stop; now it is stealable
        assert queue.try_claim(key, "thief") is not None
