"""Smoke-run every example script (the examples-coverage satellite).

Each script under ``examples/`` runs in a subprocess from a temporary working
directory, so registry/runner refactors cannot silently break them and a
script that scribbles artifacts does so outside the repository.  The scripts
are deliberately small (seconds each); a hang fails via the timeout.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_smoke(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}")
    assert completed.stdout.strip(), f"{script.name} printed nothing"
