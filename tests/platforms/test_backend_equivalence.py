"""Scalar vs vectorized backend equivalence — the bit-identity contract.

``sim.backend`` selects *how* the simulator executes (per-event scalar path
vs event batches on a calendar queue), never *what* it computes: every
platform x workload must produce a byte-identical ``PlatformResult`` record
under both backends.  Gated three ways here: property-sampled cells across
the full platform and workload-family space, a recorded-trace replay, and
the CI fig10 grid's derived report CSVs compared byte-for-byte.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.runner import SweepSpec, apply_overrides, run_sweep

#: Every evaluation platform, including the non-flash GDDR5 baseline and
#: Hetero (whose page-fault handler exercises the scalar fallback inside
#: the batched memory path).
PLATFORMS = (
    "GDDR5", "Hetero", "HybridGPU", "Optane",
    "ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG",
)

#: Workload tokens spanning the family space: co-run mixes, single apps,
#: and parameterised scenario instances.
WORKLOADS = (
    "betw-back",
    "bfs1-gaus",
    "pr-gaus",
    "betw",
    "kv-lookup:zipf=1.1,get_ratio=0.9",
    "embedding-inference",
    "stream-join",
    "multi-tenant:phases=2",
)


def _records(platform, workload, backend, scale=0.05, seed=1):
    base = apply_overrides(default_config(), {"sim.backend": backend})
    spec = SweepSpec.create(
        platforms=[platform],
        workloads=[workload],
        scale=scale,
        seed=seed,
        warps_per_sm=2,
        base_config=base,
    )
    result = run_sweep(spec, workers=1, cache=False)
    return [
        json.dumps(run.result.to_record(), sort_keys=True) for run in result
    ]


class TestRecordBitIdentity:
    @given(
        platform=st.sampled_from(PLATFORMS),
        workload=st.sampled_from(WORKLOADS),
        seed=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=8, deadline=None)
    def test_backends_produce_identical_records(self, platform, workload, seed):
        scalar = _records(platform, workload, "scalar", seed=seed)
        vectorized = _records(platform, workload, "vectorized", seed=seed)
        assert scalar == vectorized

    def test_trace_replay_is_backend_invariant(self, tmp_path):
        """``trace:`` replays run the identical payload under both backends."""
        from repro.workloads import tracefile

        trace_path = tmp_path / "replay.json"
        tracefile.record_trace(
            "betw-back", trace_path, scale=0.05, seed=1,
            num_sms=16, warps_per_sm=2, memory_instructions_per_warp=64,
        )
        token = f"trace:{trace_path}"
        assert _records("ZnG", token, "scalar") == _records(
            "ZnG", token, "vectorized"
        )

    def test_vectorized_backend_actually_batches(self):
        """Guard against the vectorized path silently falling back to scalar:
        the calendar-queue scheduler must process the same event count while
        the batched memory path is exercised (same events, different code)."""
        from repro.platforms import build_platform
        from repro.runner.spec import build_cell_trace

        base = apply_overrides(default_config(), {"sim.backend": "vectorized"})
        platform = build_platform("ZnG", base)
        assert platform.gpu.backend == "vectorized"
        assert platform._memory_batch_fn() is not None


class TestFig10GridReportEquality:
    def test_fig10_report_csvs_byte_equal_between_backends(self, tmp_path):
        """The CI gate's tier-1 twin: the golden fig10 grid's derived CSVs
        are byte-identical under both ``sim.backend`` values."""
        from repro.analysis.reporting import GOLDEN_SCALE, write_report
        from repro.configspace import get_preset

        out_dirs = {}
        for backend in ("scalar", "vectorized"):
            base = apply_overrides(default_config(), {"sim.backend": backend})
            spec = get_preset("fig10").spec(
                scale=GOLDEN_SCALE, base_config=base
            )
            result = run_sweep(spec, workers=1, cache=False)
            out = tmp_path / backend
            write_report(result, out, plots=False, html_report=False)
            out_dirs[backend] = out

        scalar_csvs = sorted(out_dirs["scalar"].glob("*.csv"))
        assert scalar_csvs, "fig10 report emitted no CSVs"
        for path in scalar_csvs:
            twin = out_dirs["vectorized"] / path.name
            assert twin.read_bytes() == path.read_bytes(), (
                f"{path.name} differs between scalar and vectorized backends"
            )
