"""Cross-platform integration tests on micro-workloads.

Run each platform on controlled access patterns and assert the memory system
behaves sensibly: reads complete, writes complete, statistics are consistent,
and the ZnG optimisations engage on the patterns that motivate them.
"""

import pytest

from repro.platforms import build_platform
from repro.platforms.zng import PLATFORM_NAMES, ZnGPlatform, ZnGVariant
from repro.workloads import microbench

ALL = ["GDDR5"] + PLATFORM_NAMES


class TestStreamingOnAllPlatforms:
    @pytest.mark.parametrize("name", ALL)
    def test_streaming_completes(self, name):
        trace = microbench.streaming(num_warps=16, accesses_per_warp=32)
        result = build_platform(name).run(trace)
        assert result.ipc > 0
        assert result.execution.memory_requests > 0

    @pytest.mark.parametrize("name", ALL)
    def test_statistics_consistent(self, name):
        trace = microbench.streaming(num_warps=8, accesses_per_warp=16)
        platform = build_platform(name)
        platform.run(trace)
        reads = platform.stats.get("read_requests")
        writes = platform.stats.get("write_requests")
        assert platform.stats.get("requests") == reads + writes
        assert writes == 0  # streaming is read-only


class TestWritePatterns:
    @pytest.mark.parametrize("name", ["GDDR5", "HybridGPU", "Optane", "ZnG"])
    def test_hammer_completes(self, name):
        trace = microbench.hammer(num_warps=16, writes_per_warp=32, hot_pages=4)
        result = build_platform(name).run(trace)
        assert result.ipc > 0

    def test_zng_register_absorbs_hammer(self):
        trace = microbench.hammer(num_warps=32, writes_per_warp=64, hot_pages=8)
        platform = ZnGPlatform(ZnGVariant.WROPT)
        platform.run(trace)
        # Maximal write redundancy should give a very high register hit rate.
        assert platform.register_cache.hit_rate > 0.9


class TestPrefetchEngagesOnStreaming:
    def test_dynamic_prefetch_triggers_on_streaming(self):
        trace = microbench.streaming(num_warps=16, accesses_per_warp=64)
        platform = ZnGPlatform(ZnGVariant.FULL)
        result = platform.run(trace)
        # A purely sequential stream should drive the predictor to prefetch.
        assert result.extra.get("prefetch_rate", 0.0) > 0.0


class TestReuseReducesFlashTraffic:
    def test_stencil_reuse_limits_flash_reads(self):
        trace = microbench.stencil(num_warps=32, iterations=32)
        platform = ZnGPlatform(ZnGVariant.FULL)
        result = platform.run(trace)
        # On-chip reuse keeps flash reads well below total memory requests.
        assert platform.stats.get("flash_page_reads") < result.execution.memory_requests


class TestDeterminism:
    @pytest.mark.parametrize("name", ["HybridGPU", "Optane", "ZnG"])
    def test_same_trace_same_result(self, name):
        trace = microbench.streaming(num_warps=8, accesses_per_warp=16)
        a = build_platform(name).run(trace)
        b = build_platform(name).run(trace)
        assert a.ipc == pytest.approx(b.ipc)
        assert a.cycles == pytest.approx(b.cycles)
