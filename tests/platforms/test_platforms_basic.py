"""Smoke and structural tests for every platform."""

import pytest

from repro.platforms import build_platform
from repro.platforms.zng import PLATFORM_NAMES, ZnGPlatform, ZnGVariant

ALL_PLATFORMS = ["GDDR5"] + PLATFORM_NAMES


class TestFactory:
    @pytest.mark.parametrize("name", ALL_PLATFORMS)
    def test_build_each_platform(self, name):
        platform = build_platform(name)
        assert platform.name == name

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            build_platform("Frankenstein")

    def test_zng_variants(self):
        assert ZnGVariant.BASE.value == "ZnG-base"
        assert not ZnGVariant.BASE.has_read_optimization
        assert not ZnGVariant.BASE.has_write_optimization
        assert ZnGVariant.FULL.has_read_optimization
        assert ZnGVariant.FULL.has_write_optimization


class TestExecution:
    @pytest.mark.parametrize("name", ALL_PLATFORMS)
    def test_runs_to_completion(self, name, tiny_mix):
        platform = build_platform(name)
        result = platform.run(tiny_mix.combined)
        assert result.cycles > 0
        assert result.ipc > 0
        assert result.execution.instructions > 0

    @pytest.mark.parametrize("name", ALL_PLATFORMS)
    def test_request_accounting(self, name, tiny_mix):
        platform = build_platform(name)
        platform.run(tiny_mix.combined)
        requests = platform.stats.get("requests")
        reads = platform.stats.get("read_requests")
        writes = platform.stats.get("write_requests")
        assert requests == reads + writes

    def test_describe(self, tiny_mix):
        platform = build_platform("ZnG")
        description = platform.describe()
        assert description["name"] == "ZnG"
        assert description["l2_read_only"]


class TestL2Configuration:
    def test_read_optimization_uses_stt_mram(self):
        base = ZnGPlatform(ZnGVariant.BASE)
        full = ZnGPlatform(ZnGVariant.FULL)
        assert full.l2.size_bytes > base.l2.size_bytes
        assert full.l2.read_only
        assert not base.l2.read_only

    def test_stt_mram_is_4x_sram(self):
        base = ZnGPlatform(ZnGVariant.BASE)
        full = ZnGPlatform(ZnGVariant.FULL)
        assert full.l2.size_bytes == 4 * base.l2.size_bytes


class TestZnGComponents:
    def test_base_has_no_prefetcher(self):
        platform = ZnGPlatform(ZnGVariant.BASE)
        assert platform.prefetcher is None

    def test_rdopt_has_prefetcher(self):
        platform = ZnGPlatform(ZnGVariant.RDOPT)
        assert platform.prefetcher is not None

    def test_wropt_uses_package_scope(self):
        platform = ZnGPlatform(ZnGVariant.WROPT)
        assert platform.register_cache.scope == "package"

    def test_base_uses_plane_scope(self):
        platform = ZnGPlatform(ZnGVariant.BASE)
        assert platform.register_cache.scope == "plane"

    def test_all_zng_use_mesh_network(self):
        for variant in ZnGVariant:
            platform = ZnGPlatform(variant)
            assert platform.flash_network.network_type == "mesh"
