"""Integration tests asserting the paper's qualitative result ordering.

These run a shared moderate-scale mix once per session and check the *shape*
of the results (who wins, by roughly what factor), not absolute numbers.
"""

import pytest

from repro.platforms import build_platform
from repro.platforms.zng import PLATFORM_NAMES
from repro.workloads.multiapp import build_mix


@pytest.fixture(scope="module")
def results():
    # Enough thread-level parallelism for the GPU to hide Z-NAND latency — the
    # regime the paper targets (up to 80 warps/SM).  ZnG's advantage over
    # Optane grows with TLP, so a too-small warp count understates it.
    mix = build_mix("betw", "back", scale=0.4, seed=1,
                    warps_per_sm=12, memory_instructions_per_warp=96)
    out = {}
    for name in ["GDDR5"] + PLATFORM_NAMES:
        out[name] = build_platform(name).run(mix.combined)
    return out


class TestHeadlineResults:
    def test_zng_beats_hybrid_gpu(self, results):
        """ZnG is several-fold faster than HybridGPU (paper: 7.5x)."""
        speedup = results["ZnG"].ipc / results["HybridGPU"].ipc
        assert speedup > 2.0

    def test_zng_beats_optane(self, results):
        """ZnG exceeds the Optane baseline (paper: ~1.9x bandwidth)."""
        assert results["ZnG"].ipc > results["Optane"].ipc

    def test_optane_beats_hybrid_gpu(self, results):
        """Optane improves on HybridGPU (paper: +186%)."""
        assert results["Optane"].ipc > results["HybridGPU"].ipc

    def test_gddr5_is_fastest(self, results):
        """The resident-DRAM reference bounds every flash/Optane platform."""
        best_non_dram = max(
            results[name].ipc for name in PLATFORM_NAMES
        )
        assert results["GDDR5"].ipc >= best_non_dram


class TestOptimizationContributions:
    def test_write_optimization_is_large(self, results):
        """ZnG-wropt dramatically outperforms the unbuffered base/rdopt."""
        assert results["ZnG-wropt"].ipc > 5 * results["ZnG-base"].ipc

    def test_full_at_least_matches_wropt(self, results):
        assert results["ZnG"].ipc >= 0.9 * results["ZnG-wropt"].ipc

    def test_read_optimization_helps_over_base(self, results):
        """The read optimisation improves on the base once writes are buffered."""
        assert results["ZnG"].ipc >= results["ZnG-wropt"].ipc * 0.9


class TestRawZNandDegradation:
    def test_raw_znand_is_far_slower_than_dram(self, results):
        """Fig. 5a: direct Z-NAND access degrades performance by a large factor."""
        degradation = results["GDDR5"].ipc / results["ZnG-base"].ipc
        assert degradation > 5.0


class TestFlashBandwidth:
    def test_zng_extracts_more_flash_bandwidth(self, results):
        """Fig. 11: ZnG reaches far higher flash-array bandwidth than HybridGPU."""
        assert (
            results["ZnG"].flash_array_read_bandwidth_gbps
            > results["HybridGPU"].flash_array_read_bandwidth_gbps
        )

    def test_hybrid_gpu_flash_bandwidth_low(self, results):
        """HybridGPU's flash-array bandwidth is stuck at a few GB/s."""
        assert results["HybridGPU"].flash_array_read_bandwidth_gbps < 10.0
