"""Integration tests for the ZnG mechanisms inside a running platform."""

import pytest

from repro.platforms.zng import ZnGPlatform, ZnGVariant
from repro.workloads.multiapp import build_mix


@pytest.fixture(scope="module")
def mix():
    return build_mix("betw", "back", scale=0.3, seed=1,
                     warps_per_sm=4, memory_instructions_per_warp=64)


class TestFTLIntegration:
    def test_dbmt_populated(self, mix):
        platform = ZnGPlatform(ZnGVariant.FULL)
        platform.run(mix.combined)
        assert len(platform.ftl.dbmt) > 0

    def test_reads_translate(self, mix):
        platform = ZnGPlatform(ZnGVariant.FULL)
        platform.run(mix.combined)
        assert platform.ftl.reads_translated > 0

    def test_writes_handled(self, mix):
        """Writes are either absorbed in registers or allocated a log page."""
        platform = ZnGPlatform(ZnGVariant.FULL)
        platform.run(mix.combined)
        absorbed = platform.register_cache.write_hits + platform.register_cache.write_misses
        assert absorbed > 0

    def test_base_allocates_log_pages(self, mix):
        """ZnG-base programs log pages directly as its plane registers overflow."""
        platform = ZnGPlatform(ZnGVariant.BASE)
        platform.run(mix.combined)
        assert platform.ftl.writes_allocated > 0


class TestReadOptimization:
    def test_prefetcher_trains(self, mix):
        platform = ZnGPlatform(ZnGVariant.RDOPT)
        platform.run(mix.combined)
        assert platform.prefetcher.predictor.updates > 0

    def test_stt_mram_improves_l2_hit_rate(self, mix):
        base = ZnGPlatform(ZnGVariant.BASE)
        rdopt = ZnGPlatform(ZnGVariant.RDOPT)
        base_result = base.run(mix.combined)
        rdopt_result = rdopt.run(mix.combined)
        assert rdopt_result.l2_hit_rate >= base_result.l2_hit_rate


class TestWriteOptimization:
    def test_register_cache_absorbs_writes(self, mix):
        platform = ZnGPlatform(ZnGVariant.WROPT)
        platform.run(mix.combined)
        assert platform.register_cache.write_hits > 0

    def test_register_hit_rate_high_for_redundant_writes(self, mix):
        platform = ZnGPlatform(ZnGVariant.WROPT)
        result = platform.run(mix.combined)
        # Write redundancy (Fig. 5c) means most writes hit a resident register.
        assert result.extra["register_hit_rate"] > 0.5

    def test_fewer_programs_than_writes(self, mix):
        platform = ZnGPlatform(ZnGVariant.WROPT)
        platform.run(mix.combined)
        writes = platform.stats.get("register_write_hits") + platform.stats.get(
            "register_write_misses"
        )
        programs = platform.register_cache.programs_issued
        assert programs < writes


class TestWriteHeatmap:
    def test_heatmap_reflects_writes(self, mix):
        platform = ZnGPlatform(ZnGVariant.BASE)
        platform.run(mix.combined)
        heatmap = platform.array.write_heatmap()
        assert heatmap.sum() > 0
