"""Tests for the configuration dataclasses and derived quantities (Table I)."""

import pytest

from repro.config import (
    GPU_FREQ_HZ,
    PlatformConfig,
    SSDEngineConfig,
    ZNANDConfig,
    bandwidth_to_bytes_per_cycle,
    default_config,
    ns_to_cycles,
    us_to_cycles,
    zng_config,
)


class TestUnitConversions:
    def test_ns_to_cycles(self):
        # 1 ns at 1.2 GHz is 1.2 cycles.
        assert ns_to_cycles(1.0) == pytest.approx(1.2)

    def test_us_to_cycles(self):
        assert us_to_cycles(3.0) == pytest.approx(3600.0)

    def test_bandwidth_conversion(self):
        assert bandwidth_to_bytes_per_cycle(GPU_FREQ_HZ) == pytest.approx(1.0)


class TestZNANDGeometry:
    def test_total_planes(self):
        config = ZNANDConfig()
        assert config.total_planes == 16 * 1 * 8 * 8

    def test_capacity_consistency(self):
        config = ZNANDConfig()
        expected = (
            config.total_planes
            * config.blocks_per_plane
            * config.pages_per_block
            * config.page_size_bytes
        )
        assert config.total_capacity_bytes == expected

    def test_read_latency_cycles(self):
        config = ZNANDConfig()
        assert config.read_latency_cycles == pytest.approx(us_to_cycles(3.0))

    def test_program_slower_than_read(self):
        config = ZNANDConfig()
        assert config.program_latency_cycles > config.read_latency_cycles

    def test_mesh_wider_than_bus(self):
        config = ZNANDConfig()
        assert (
            config.flash_network_bandwidth_bytes_per_s
            > config.channel_bandwidth_bytes_per_s
        )

    def test_accumulated_bandwidth_scales_with_planes(self):
        config = ZNANDConfig()
        assert config.accumulated_read_bandwidth_bytes_per_s == pytest.approx(
            config.plane_read_bandwidth_bytes_per_s * config.total_planes
        )


class TestSSDEngine:
    def test_engine_throughput_positive(self):
        config = SSDEngineConfig()
        assert config.engine_throughput_bytes_per_s > 0

    def test_dram_buffer_bandwidth(self):
        config = SSDEngineConfig()
        # 32-bit bus at 2400 MT/s = 9.6 GB/s.
        assert config.dram_buffer_bandwidth_bytes_per_s == pytest.approx(9.6e9)


class TestPlatformConfig:
    def test_default_has_all_subconfigs(self):
        config = default_config()
        assert config.gpu is not None
        assert config.znand is not None
        assert config.stt_mram is not None

    def test_copy_overrides(self):
        base = default_config()
        modified = base.copy(znand=ZNANDConfig(channels=8))
        assert modified.znand.channels == 8
        assert base.znand.channels == 16  # original unchanged

    def test_zng_config_uses_mesh_and_more_registers(self):
        config = zng_config()
        assert config.znand.flash_network_type == "mesh"
        assert config.znand.registers_per_plane == 8

    def test_stt_mram_is_4x_sram(self):
        config = default_config()
        assert config.stt_mram.size_bytes == 4 * config.gpu.l2_size_bytes


class TestTableIConsistency:
    def test_gpu_frequency(self):
        assert default_config().gpu.frequency_hz == 1.2e9

    def test_l2_banks(self):
        assert default_config().gpu.l2_banks == 6

    def test_total_max_warps(self):
        config = default_config()
        assert config.gpu.total_max_warps == 16 * 80
