#!/usr/bin/env python
"""Domain example: verifying the zero-overhead FTL preserves data.

The ZnG FTL redirects writes to log blocks, remaps them through the row
decoder, and periodically merges log blocks back into data blocks via the GPU
helper thread.  This example runs a randomized read/write workload through the
FTL with a functional shadow model and checks that every read returns the most
recent write — across hundreds of garbage-collection merges.

Run with::

    python examples/data_integrity.py
"""

from __future__ import annotations

import random

from repro.config import FTLConfig, ZNANDConfig
from repro.core.helper_gc import HelperThreadGC
from repro.core.integrity import install_integrity_tracking
from repro.core.zero_overhead_ftl import ZeroOverheadFTL
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def main() -> None:
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=16, pages_per_block=8,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    ftl = ZeroOverheadFTL(array, FTLConfig(data_blocks_per_log_block=4))
    ftl.helper_gc = HelperThreadGC(ftl, array)
    ftl.setup_mapping(64)
    model = install_integrity_tracking(ftl)

    rng = random.Random(7)
    expected = {}
    operations = 2000
    print(f"Running {operations} randomized writes through the FTL...")
    for step in range(operations):
        vp = rng.randint(0, 63)
        value = rng.randint(0, 1 << 30)
        model.write(vp, value, now=step * 1000.0)
        expected[vp] = value

    mismatches = sum(1 for vp, value in expected.items() if model.read(vp) != value)

    print(f"  writes issued:        {model.writes}")
    print(f"  GC merges performed:  {ftl.gc_merges}")
    print(f"  helper pages copied:  {ftl.helper_gc.pages_copied}")
    print(f"  flash programs:       {array.page_programs}")
    print(f"  distinct pages read:  {len(expected)}")
    print(f"  read-after-write mismatches: {mismatches}")
    print("  RESULT:", "PASS — data preserved across GC" if mismatches == 0 else "FAIL")


if __name__ == "__main__":
    main()
