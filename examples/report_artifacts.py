#!/usr/bin/env python
"""End-to-end: sweep -> manifest -> one-command report artifacts.

Runs a small sharded sweep (two shards, each leaving a run manifest), then
feeds both manifests to the reporting subsystem — the same path as
``python -m repro report <manifest>...`` — and prints what it emitted.
The CSVs are canonical (shortest round-trip float repr), so this merged
two-shard report is byte-identical to the report of the same sweep run
serially; the assertion at the end proves it.

Run with::

    python examples/report_artifacts.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.reporting import report_from_manifests, write_report
from repro.runner import SweepRunner, SweepSpec, default_manifest_name, run_sweep


def main() -> None:
    spec = SweepSpec.create(
        platforms=["ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG"],
        workloads=["betw-back", "bfs1-gaus"],
        scale=0.05,
        warps_per_sm=4,
    )

    # Two independent shard runs, each leaving a manifest in the cache dir
    # (this is what two CI jobs or two machines would produce).
    cache_dir = Path("report-example-cache")
    manifest_paths = []
    for index in range(2):
        manifest = cache_dir / default_manifest_name(index, 2)
        SweepRunner(workers=1, cache=cache_dir).run(
            spec.shard(index, 2), manifest_path=manifest)
        manifest_paths.append(manifest)
        print(f"shard {index + 1}/2 done -> {manifest}")

    # Fold the manifests into the full artifact set (completeness-verified).
    out_dir = Path("report-example-out")
    written = report_from_manifests(manifest_paths, out_dir)
    print(f"\nartifacts in {out_dir}/:")
    for name in sorted(written):
        print(f"  {name}")

    # The gate property: merged-shard CSVs == serial-sweep CSVs, bit for bit.
    serial_dir = Path("report-example-serial")
    write_report(run_sweep(spec, workers=1, cache=False), serial_dir,
                 plots=False, html_report=False)
    for path in sorted(serial_dir.glob("*.csv")):
        assert (out_dir / path.name).read_bytes() == path.read_bytes()
    print("\nmerged two-shard CSVs are byte-identical to the serial sweep's")

    fig10 = (out_dir / "fig10.csv").read_text().splitlines()
    print("\nfig10.csv:")
    for line in fig10:
        print(f"  {line}")


if __name__ == "__main__":
    main()
