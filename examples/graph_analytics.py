#!/usr/bin/env python
"""Domain example: large-scale graph analytics on a ZnG GPU.

Graph workloads are the paper's headline motivation: read-intensive, with
heavy page re-access (Fig. 5b) and data sets that dwarf GPU DRAM.  This example
sweeps several graph kernels co-run with a write-heavy solver, showing how the
read optimisation (STT-MRAM L2 + prefetch) and the write optimisation
(flash-register cache) each contribute.

Run with::

    python examples/graph_analytics.py
"""

from __future__ import annotations

from repro.platforms.zng import ZnGPlatform, ZnGVariant
from repro.workloads import build_mix

GRAPH_MIXES = [("betw", "back"), ("bfs1", "gaus"), ("sssp3", "gram"), ("pr", "gaus")]


def run_variant(variant: ZnGVariant, mix) -> dict:
    platform = ZnGPlatform(variant)
    result = platform.run(mix.combined)
    return {
        "ipc": result.ipc,
        "l2_hit_rate": result.l2_hit_rate,
        "flash_gbps": result.flash_array_read_bandwidth_gbps,
        "register_hit_rate": result.extra.get("register_hit_rate", 0.0),
        "prefetch_rate": result.extra.get("prefetch_rate", 0.0),
    }


def main() -> None:
    print("Graph analytics on ZnG — contribution of each optimisation\n")
    for read_app, write_app in GRAPH_MIXES:
        mix = build_mix(
            read_app, write_app, scale=0.25, seed=1, warps_per_sm=12,
            memory_instructions_per_warp=96,
        )
        print(f"== {read_app}-{write_app} "
              f"(read ratio {mix.first.spec.read_ratio:.2f}, "
              f"re-access {mix.combined.mean_read_reaccess:.1f}) ==")
        base = run_variant(ZnGVariant.BASE, mix)
        rdopt = run_variant(ZnGVariant.RDOPT, mix)
        wropt = run_variant(ZnGVariant.WROPT, mix)
        full = run_variant(ZnGVariant.FULL, mix)
        print(f"  {'variant':10s} {'IPC':>9s} {'L2 hit':>8s} {'flash GB/s':>11s} {'reg hit':>8s}")
        for label, data in (
            ("base", base), ("rdopt", rdopt), ("wropt", wropt), ("full", full)
        ):
            print(
                f"  {label:10s} {data['ipc']:>9.4f} {data['l2_hit_rate']:>8.3f} "
                f"{data['flash_gbps']:>11.2f} {data['register_hit_rate']:>8.3f}"
            )
        print(f"  full/base speedup: {full['ipc'] / base['ipc']:.1f}x\n")


if __name__ == "__main__":
    main()
