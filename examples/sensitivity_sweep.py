#!/usr/bin/env python
"""Domain example: ZnG design-space sensitivity sweeps.

Sweeps ZnG's main design knobs one at a time and prints how each affects IPC,
L2 hit rate and register hit rate.  This is the exploration the paper does to
justify its default configuration (Table I).

The axes are not listed here: they are enumerated from the config schema
(``repro.configspace.ablation_axes()`` — the ``ablation`` metadata each field
declares), so this example automatically picks up any new sensitivity axis
added to ``repro/config.py``.  Each axis is also available as an experiment
preset (``python -m repro sweep --preset reg-sweep`` etc.) and documented by
``python -m repro config --explain <path>``.

Run with::

    python examples/sensitivity_sweep.py
"""

from __future__ import annotations

from repro.analysis import sensitivity
from repro.configspace import SCHEMA, ablation_axes


def _extra_metric(result) -> str:
    parts = [f"l2_hit={result.l2_hit_rate:.3f}"]
    if "register_hit_rate" in result.extra:
        parts.append(f"reg_hit={result.extra['register_hit_rate']:.3f}")
    if result.extra.get("prefetch_rate"):
        parts.append(f"prefetch_rate={result.extra['prefetch_rate']:.3f}")
    return "  ".join(parts)


def main() -> None:
    scale = 0.2
    axes = ablation_axes()
    print(f"{len(axes)} sensitivity axes declared in the config schema:\n")

    for path in sorted(axes):
        spec = SCHEMA.get(path)
        print(f"{path}  [{spec.unit}] — {spec.doc}")
        results = sensitivity.sweep_schema_axis(path, scale=scale)
        for value, result in results.items():
            print(f"  {str(value):>10}: IPC={result.ipc:.4f}  "
                  f"{_extra_metric(result)}")
        print()


if __name__ == "__main__":
    main()
