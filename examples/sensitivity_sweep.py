#!/usr/bin/env python
"""Domain example: ZnG design-space sensitivity sweeps.

Sweeps ZnG's main design knobs one at a time — flash registers per plane, L2
capacity, prefetch threshold and register interconnect — and prints how each
affects IPC, L2 hit rate and register hit rate.  This is the exploration the
paper does to justify its default configuration (Table I).

Run with::

    python examples/sensitivity_sweep.py
"""

from __future__ import annotations

from repro.analysis import sensitivity


def _print_numeric(title, results, extract):
    print(f"\n{title}")
    for key in sorted(results):
        result = results[key]
        ipc, extra = result.ipc, extract(result)
        print(f"  {str(key):>6}: IPC={ipc:.4f}  {extra}")


def main() -> None:
    scale = 0.2

    regs = sensitivity.sweep_registers_per_plane(values=[2, 4, 8, 16], scale=scale)
    _print_numeric(
        "Registers per plane (write-cache size):",
        regs,
        lambda r: f"reg_hit={r.extra.get('register_hit_rate', 0):.3f}  "
                  f"flash_gbps={r.flash_array_read_bandwidth_gbps:.1f}",
    )

    l2 = sensitivity.sweep_l2_size(sizes_mb=[6, 12, 24, 48], scale=scale)
    _print_numeric(
        "L2 capacity (MB):",
        l2,
        lambda r: f"l2_hit={r.l2_hit_rate:.3f}",
    )

    thresh = sensitivity.sweep_prefetch_threshold(thresholds=[1, 4, 8, 12, 15], scale=scale)
    _print_numeric(
        "Prefetch cutoff threshold:",
        thresh,
        lambda r: f"prefetch_rate={r.extra.get('prefetch_rate', 0):.3f}  "
                  f"l2_hit={r.l2_hit_rate:.3f}",
    )

    interconnect = sensitivity.sweep_interconnect(scale=scale)
    print("\nRegister interconnect:")
    for kind in ("swnet", "fcnet", "nif"):
        result = interconnect[kind]
        print(f"  {kind:6s}: IPC={result.ipc:.4f}")


if __name__ == "__main__":
    main()
