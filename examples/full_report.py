#!/usr/bin/env python
"""Generate the complete textual reproduction report (all tables and figures).

This is a thin wrapper over ``repro.analysis.fullreport`` that runs at a small
scale so it finishes quickly; raise ``scale`` for closer-to-paper numbers.

Run with::

    python examples/full_report.py
"""

from __future__ import annotations

from repro.analysis.fullreport import generate_report


def main() -> None:
    print(generate_report(scale=0.15, mixes=[("betw", "back"), ("bfs1", "gaus")]))


if __name__ == "__main__":
    main()
