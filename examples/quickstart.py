#!/usr/bin/env python
"""Quickstart: run every GPU-SSD platform on one workload and compare IPC.

This mirrors the core experiment of the paper (Figure 10): integrate Z-NAND
flash as GPU memory and measure how ZnG's three optimisations recover the
performance lost to the page-granularity mismatch and the SSD controller.

The grid is the ``quickstart`` experiment preset from ``repro.configspace``
— the same declarative experiment the CLI runs with::

    python -m repro sweep --preset quickstart

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.configspace import get_preset
from repro.runner import build_cell_trace, run_sweep


def main() -> None:
    preset = get_preset("quickstart")
    print(preset.describe())

    # A read-intensive graph workload (betweenness centrality) co-run with a
    # write-intensive scientific kernel (back-propagation), exactly the kind
    # of multi-application mix the paper stresses.
    spec = preset.spec()
    cells = spec.cells()
    trace = build_cell_trace(cells[0])
    print(f"\nWorkload {cells[0].workload}: warps={len(trace.warps)}  "
          f"memory instructions={trace.total_memory_instructions}  "
          f"touched pages={trace.touched_pages()}")

    print("\nRunning platforms...")
    sweep = run_sweep(spec)
    workload = preset.workloads[0]
    results = {name: sweep.get(name, workload) for name in preset.platforms}

    reference = results["ZnG"].ipc
    print(f"\n{'platform':12s} {'IPC':>10s} {'vs ZnG':>10s} {'flash GB/s':>12s}")
    for name, result in results.items():
        print(
            f"{name:12s} {result.ipc:>10.4f} {result.ipc / reference:>10.2f} "
            f"{result.flash_array_read_bandwidth_gbps:>12.2f}"
        )

    zng = results["ZnG"]
    hybrid = results["HybridGPU"]
    optane = results["Optane"]
    print("\nHeadline comparisons:")
    print(f"  ZnG is {zng.ipc / hybrid.ipc:.2f}x faster than HybridGPU (paper: 7.5x)")
    print(f"  ZnG is {zng.ipc / optane.ipc:.2f}x faster than the Optane baseline")
    print(
        f"  ZnG reaches {zng.flash_array_read_bandwidth_gbps:.1f} GB/s of flash-array "
        f"bandwidth vs {hybrid.flash_array_read_bandwidth_gbps:.1f} GB/s for HybridGPU"
    )


if __name__ == "__main__":
    main()
