#!/usr/bin/env python
"""Quickstart: run every GPU-SSD platform on one workload and compare IPC.

This mirrors the core experiment of the paper (Figure 10): integrate Z-NAND
flash as GPU memory and measure how ZnG's three optimisations recover the
performance lost to the page-granularity mismatch and the SSD controller.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.platforms import build_platform
from repro.platforms.zng import PLATFORM_NAMES
from repro.workloads import build_mix


def main() -> None:
    # A read-intensive graph workload (betweenness centrality) co-run with a
    # write-intensive scientific kernel (back-propagation), exactly the kind of
    # multi-application mix the paper stresses.
    print("Building the betw-back multi-application workload...")
    mix = build_mix(
        "betw", "back", scale=0.3, seed=1, warps_per_sm=12,
        memory_instructions_per_warp=96,
    )
    print(
        f"  warps={len(mix.combined.warps)}  "
        f"memory instructions={mix.combined.total_memory_instructions}  "
        f"touched pages={mix.combined.touched_pages()}"
    )

    print("\nRunning platforms...")
    results = {}
    for name in ["GDDR5"] + PLATFORM_NAMES:
        result = build_platform(name).run(mix.combined)
        results[name] = result

    reference = results["ZnG"].ipc
    print(f"\n{'platform':12s} {'IPC':>10s} {'vs ZnG':>10s} {'flash GB/s':>12s}")
    for name, result in results.items():
        print(
            f"{name:12s} {result.ipc:>10.4f} {result.ipc / reference:>10.2f} "
            f"{result.flash_array_read_bandwidth_gbps:>12.2f}"
        )

    zng = results["ZnG"]
    hybrid = results["HybridGPU"]
    optane = results["Optane"]
    print("\nHeadline comparisons:")
    print(f"  ZnG is {zng.ipc / hybrid.ipc:.2f}x faster than HybridGPU (paper: 7.5x)")
    print(f"  ZnG is {zng.ipc / optane.ipc:.2f}x faster than the Optane baseline")
    print(
        f"  ZnG reaches {zng.flash_array_read_bandwidth_gbps:.1f} GB/s of flash-array "
        f"bandwidth vs {hybrid.flash_array_read_bandwidth_gbps:.1f} GB/s for HybridGPU"
    )


if __name__ == "__main__":
    main()
