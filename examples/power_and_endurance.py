#!/usr/bin/env python
"""Domain example: power and endurance of a ZnG GPU.

Two of the paper's motivations are power (Figure 3b) and — implicitly — flash
endurance under the heavy write redundancy of Figure 5c.  This example
quantifies both: the static-power advantage of Z-NAND over GDDR5, and how the
flash-register write cache extends device lifetime by absorbing redundant
writes before they reach the array.

Run with::

    python examples/power_and_endurance.py
"""

from __future__ import annotations

from repro.analysis.power import (
    compare_static_power_per_gb,
    dram_subsystem_power,
    gpu_dram_vs_znand_capacity,
    znand_power,
)
from repro.config import GDDR5
from repro.platforms.zng import ZnGPlatform, ZnGVariant
from repro.workloads import build_mix


def main() -> None:
    print("Static power per GB (Figure 3b):")
    for name, watts in compare_static_power_per_gb().items():
        print(f"  {name:8s} {watts:6.2f} W/GB")

    print("\nCapacity provisionable at a 100 W budget:")
    for name, gb in gpu_dram_vs_znand_capacity().items():
        print(f"  {name:8s} {gb:10.0f} GB")

    print("\nRunning betw-back on ZnG (full) and ZnG-base to compare endurance...")
    mix = build_mix("betw", "back", scale=0.3, seed=1, warps_per_sm=12,
                    memory_instructions_per_warp=96)

    for variant in (ZnGVariant.BASE, ZnGVariant.FULL):
        platform = ZnGPlatform(variant)
        result = platform.run(mix.combined)
        report = platform.endurance.report()
        rc = platform.register_cache
        absorbed = rc.write_hits
        programmed = rc.programs_issued + platform.stats.get("direct_programs")
        gain = platform.endurance.endurance_gain_from_buffering(absorbed, max(1, programmed))
        print(f"\n  [{variant.value}]")
        print(f"    host writes absorbed in registers: {absorbed}")
        print(f"    flash programs issued:             {report.total_programs}")
        print(f"    write amplification:               {report.write_amplification:.2f}")
        print(f"    max block erase count:             {report.max_erase_count}")
        print(f"    endurance gain from buffering:     {gain:.1f}x")

        energy = znand_power(
            capacity_gb=platform.array.config.total_capacity_bytes / (1 << 30),
            reads=platform.array.page_reads,
            programs=platform.array.page_programs,
            erases=platform.array.block_erases,
            runtime_cycles=result.cycles,
        )
        print(f"    Z-NAND dynamic energy:             {energy.dynamic_energy_j * 1e3:.3f} mJ")

    dram = dram_subsystem_power(GDDR5, 12.0, accesses=100000, runtime_cycles=1e6)
    print(f"\n  Reference GDDR5 static power (12 GB): {dram.static_power_w:.1f} W")


if __name__ == "__main__":
    main()
