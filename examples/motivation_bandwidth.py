#!/usr/bin/env python
"""Domain example: reproducing the motivation figures (1b, 3, 4c).

Before proposing ZnG, the paper motivates it by showing (a) the bandwidth gap
between GDDR5 and every HybridGPU component, (b) Z-NAND's density/power
advantage, and (c) the throughput of each memory medium.  This example prints
all three as tables.

Run with::

    python examples/motivation_bandwidth.py
"""

from __future__ import annotations

from repro.analysis.figures import figure_1b, figure_3, figure_4c
from repro.analysis.report import format_figure_table


def main() -> None:
    print(format_figure_table("Figure 1b — Accumulated bandwidth (GB/s)", figure_1b(), "{:.2f}"))
    print()

    density = {name: values["density_gb"] for name, values in figure_3().items()}
    power = {name: values["power_w_per_gb"] for name, values in figure_3().items()}
    print(format_figure_table("Figure 3a — Memory density (GB/package)", density, "{:.2f}"))
    print()
    print(format_figure_table("Figure 3b — Power consumption (W/GB)", power, "{:.2f}"))
    print()

    print(format_figure_table("Figure 4c — Peak throughput (GB/s)", figure_4c(), "{:.2f}"))

    print("\nTakeaways:")
    print("  * HybridGPU's internal DRAM buffer is ~96% slower than GDDR5.")
    print("  * Z-NAND is the densest and most power-efficient medium.")
    print("  * Naively integrating an SSD leaves a large bandwidth gap to close.")


if __name__ == "__main__":
    main()
