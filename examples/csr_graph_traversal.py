#!/usr/bin/env python
"""Domain example: BFS and PageRank over a synthetic power-law graph.

Builds a real CSR graph with a power-law degree distribution and runs concrete
BFS and PageRank traversals through the ZnG memory system, so the locality and
re-access patterns emerge from graph structure — the workload class that
motivates the paper.

Run with::

    python examples/csr_graph_traversal.py
"""

from __future__ import annotations

import numpy as np

from repro.platforms import build_platform
from repro.workloads.graphgen import (
    bfs_traversal,
    generate_power_law_graph,
    pagerank_iteration,
)


def main() -> None:
    graph = generate_power_law_graph(num_vertices=4000, avg_degree=8, seed=1)
    ref_counts = np.bincount(graph.column_index, minlength=graph.num_vertices)
    print("Synthetic power-law graph")
    print(f"  vertices: {graph.num_vertices}  edges: {graph.num_edges}")
    print(f"  most-referenced vertex is cited {ref_counts.max()} times "
          f"(mean {ref_counts.mean():.1f}) — hubs drive re-access")

    for label, trace in (
        ("BFS level expansion", bfs_traversal(graph, num_warps=64, seed=1)),
        ("PageRank iteration", pagerank_iteration(graph, num_warps=64, seed=1)),
    ):
        print(f"\n== {label} ==")
        print(f"  memory instructions: {trace.total_memory_instructions}")
        print(f"  read ratio: {trace.measured_read_ratio:.2f}  "
              f"mean page re-access: {trace.mean_read_reaccess:.1f}")
        print(f"  {'platform':12s} {'IPC':>9s} {'L2 hit':>8s} {'flash GB/s':>11s}")
        for name in ("HybridGPU", "Optane", "ZnG"):
            result = build_platform(name).run(trace)
            print(f"  {name:12s} {result.ipc:>9.4f} {result.l2_hit_rate:>8.3f} "
                  f"{result.flash_array_read_bandwidth_gbps:>11.2f}")


if __name__ == "__main__":
    main()
