"""The open workload axis: parametric scenario families + trace replay.

Runs one instance of every parametric scenario family (kv-lookup,
embedding-inference, stream-join, multi-tenant) on two ZnG variants, sweeps
the kv-lookup Zipf skew through the runner, and demonstrates the trace
record -> replay round trip — all through the ``repro.workloads.registry``
subsystem, so every cell is cached, shardable and mergeable like a Table II
workload.

Run from the repository root::

    PYTHONPATH=src python examples/scenario_suite.py
"""

import tempfile
from pathlib import Path

from repro.analysis.figures import scenario_suite_from_result
from repro.analysis.sensitivity import workload_axis_from_result
from repro.runner import SweepSpec, run_sweep
from repro.workloads.io import trace_to_dict
from repro.workloads.tracefile import read_trace_file, record_trace

SCALE = 0.05  # tiny traces: this is a tour, not a measurement


def main() -> None:
    print("=== Scenario suite: every parametric family x ZnG variants ===")
    spec = SweepSpec.create(
        platforms=["ZnG-base", "ZnG"],
        workloads=["scenarios"],
        scale=SCALE,
        warps_per_sm=2,
    )
    result = run_sweep(spec, workers=2)
    for family, instances in scenario_suite_from_result(result).items():
        for token, row in instances.items():
            cells = "  ".join(f"{p}={v:.4f}" for p, v in row.items())
            print(f"  {token:28s} IPC: {cells}")

    print()
    print("=== kv-lookup Zipf-skew axis (spans the alpha >= 1 regime) ===")
    values = [0.6, 0.99, 1.2]
    kv_spec = SweepSpec.create(
        platforms=["ZnG"],
        workloads=[f"kv-lookup:zipf={value}" for value in values],
        scale=SCALE,
        warps_per_sm=2,
    )
    axis = workload_axis_from_result(
        run_sweep(kv_spec, workers=2), "kv-lookup", "zipf")
    for value, point in axis.items():
        print(f"  zipf={value:<5} IPC={point.ipc:.4f} "
              f"L2 hit rate={point.l2_hit_rate:.3f}")

    print()
    print("=== Trace record -> replay (bit-identical) ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "multi-tenant.trace.json"
        recorded = record_trace("multi-tenant:phases=2", path,
                                scale=SCALE, warps_per_sm=2)
        loaded = read_trace_file(path)
        identical = trace_to_dict(loaded.trace) == trace_to_dict(recorded.trace)
        print(f"  recorded {recorded.workload} "
              f"(hash {recorded.content_hash[:16]}...)")
        print(f"  replayed payload bit-identical: {identical}")
        replay_spec = SweepSpec.create(
            platforms=["ZnG"], workloads=[f"trace:{path}"],
            scale=SCALE, warps_per_sm=2)
        replayed = run_sweep(replay_spec)
        print(f"  sweep over trace:{path.name}: "
              f"IPC={replayed.runs[0].result.ipc:.4f}")


if __name__ == "__main__":
    main()
