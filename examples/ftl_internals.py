#!/usr/bin/env python
"""Domain example: exercising the zero-overhead FTL directly.

This example drops below the platform layer to show the ZnG FTL in action:
how a virtual page is translated through the MMU-resident block mapping table
(DBMT), how a write is redirected to a log block and remapped by the
programmable row decoder (LPMT), and how the GPU helper thread performs a
garbage-collection merge when a log block fills up.

Run with::

    python examples/ftl_internals.py
"""

from __future__ import annotations

from repro.config import FTLConfig, ZNANDConfig
from repro.core.helper_gc import HelperThreadGC
from repro.core.zero_overhead_ftl import ZeroOverheadFTL
from repro.ssd.flash_network import FlashNetwork
from repro.ssd.znand import ZNANDArray


def build_ftl():
    config = ZNANDConfig(
        channels=4, dies_per_package=2, planes_per_die=2,
        blocks_per_plane=16, pages_per_block=8,
    )
    array = ZNANDArray(config, network=FlashNetwork(config, "mesh"))
    ftl = ZeroOverheadFTL(array, FTLConfig(data_blocks_per_log_block=4))
    ftl.helper_gc = HelperThreadGC(ftl, array)
    return ftl, array


def main() -> None:
    ftl, array = build_ftl()

    print("1. Map a virtual footprint into the DBMT (block-granular, in the MMU)")
    ftl.setup_mapping(total_virtual_pages=32)
    entry = ftl.dbmt.lookup(0)
    print(f"   VBN 0 -> data block {entry.pdbn}, log block {entry.plbn}")
    print(f"   DBMT size: {ftl.dbmt_size_bytes} bytes (budget {ftl.dbmt.capacity_bytes})")
    print(f"   fits in MMU: {ftl.dbmt.fits_in_mmu()}")

    print("\n2. Read a clean page — served from the physical data block")
    read = ftl.translate_read(3)
    print(f"   virtual page 3 -> PPN {read.ppn}, from_log_block={read.from_log_block}")

    print("\n3. Write virtual page 3 — redirected to a log page by the row decoder")
    allocation = ftl.allocate_write(3, now=0.0)
    print(f"   wrote to log block {allocation.plbn}, PPN {allocation.ppn}")
    read = ftl.translate_read(3)
    print(f"   re-reading virtual page 3 -> PPN {read.ppn}, "
          f"from_log_block={read.from_log_block}")

    print("\n4. Fill the log block to trigger a helper-thread GC merge")
    merges_before = ftl.gc_merges
    time = allocation.ready_cycle
    for i in range(40):
        result = ftl.allocate_write(i % 8, now=time)
        time = result.ready_cycle + 1
        if result.gc_performed:
            print(f"   GC merge triggered after write #{i}")
            break
    print(f"   total GC merges: {ftl.gc_merges} (was {merges_before})")
    print(f"   helper thread copied {ftl.helper_gc.pages_copied} pages, "
          f"erased {ftl.helper_gc.blocks_erased} blocks")

    print("\n5. FTL statistics")
    print(f"   reads translated: {ftl.reads_translated} "
          f"({ftl.log_read_fraction * 100:.1f}% from log blocks)")
    print(f"   writes allocated: {ftl.writes_allocated}")
    print(f"   flash page reads: {array.page_reads}, programs: {array.page_programs}, "
          f"erases: {array.block_erases}")


if __name__ == "__main__":
    main()
